//! The engine's event queue: a calendar-queue/timing-wheel hybrid over
//! `(time, seq)` keys with payloads parked in a free-list slab.
//!
//! `seq` is unique per engine, so the key is a *strict total order* and
//! the pop sequence is simply the sorted order of the keys — independent
//! of the queue's internal shape. Swapping structures therefore cannot
//! change an event stream (`tests/golden_event_stream.rs` pins that
//! byte-for-byte). What changes is the constant factor:
//!
//! * **Packed keys.** `(time, seq)` is packed into one `u128`: the high
//!   64 bits are the time's bits mapped through an order-preserving
//!   involution (unsigned order == `total_cmp` order, the ordering the
//!   engine has always used), the low 64 bits are `seq`. One integer
//!   compare replaces a float `total_cmp` plus a tie-break branch.
//! * **Keys sift, payloads stay put.** Sift operations move 16-byte keys
//!   (with a parallel `u32` slot array); the event payload is written
//!   once into a slab slot and moved only when popped. The key array is
//!   dense, so the sibling keys of the 8-ary heap span two adjacent
//!   cache lines.
//! * **Calendar sharding.** When the delay model promises a strictly
//!   positive floor `w` ([`DelayModel::min_delay`]), the far future is
//!   sharded into a timing wheel of `w`-wide buckets: pushes beyond the
//!   current bucket are an O(1) append into their bucket (or an overflow
//!   heap beyond the wheel horizon), and only the **near region** — the
//!   events at or before the current bucket — lives in the sift-able
//!   heap, keeping it a fraction of the queue's population. Without a
//!   positive floor (`None` or `0` — e.g. an adversary that may deliver
//!   instantaneously), every event goes straight to the near heap and
//!   the queue *is* a plain 8-ary heap: same pop order either way, the
//!   calendar is purely a routing layer. The fallback rule is documented
//!   in `docs/DESIGN.md`.
//!
//! Region routing keys each event by `bucket(t) = ⌊t / w⌋` (monotone in
//! `t`): bucket ≤ `cur` → near heap; within the wheel horizon → its ring
//! bucket; beyond → overflow heap. The queue maintains the invariant
//! *"non-empty ⇒ near heap non-empty"* eagerly (advancing `cur`,
//! draining ring buckets, and migrating overflow on pops), so
//! [`EventQueue::peek_time`] stays a borrow of the near-heap root.
//! Because routing is monotone in time, everything outside the near heap
//! is strictly later than everything inside it — the near root is the
//! global minimum, and pop order is byte-identical to the heap's.
//!
//! The heap vectors, ring buckets, and slab all reuse their storage, so
//! a queue whose population oscillates around a steady size performs no
//! heap allocation (asserted process-wide by `tests/zero_alloc.rs`).
//!
//! [`DelayModel::min_delay`]: crate::DelayModel::min_delay

/// Heap arity. Eight keys per node: a tree shallow enough that a pop at
/// n = 10⁶ sifts through a handful of levels, while the eight 16-byte
/// sibling keys span just two adjacent cache lines (measured faster than
/// arity 4 on the hotpath fixture at every n).
const ARITY: usize = 8;

/// Ring buckets in the timing wheel: events up to `RING` floor-widths
/// ahead go to a bucket, later ones to the overflow heap. 256 buckets of
/// a typical floor cover the engine's scheduling horizon (timers and
/// deliveries land within a few floors) while keeping the wheel small
/// enough to scan when advancing across a quiet stretch.
const RING: usize = 256;

/// Maps a time to the high key half: unsigned order of the result equals
/// `f64::total_cmp` order of the inputs (flip all bits for negatives, set
/// the sign bit for non-negatives).
#[inline]
fn time_ord(time: f64) -> u64 {
    let b = time.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

/// Inverse of [`time_ord`] (it is an involution on the two half-ranges).
#[inline]
fn ord_time(ord: u64) -> f64 {
    f64::from_bits(if ord >> 63 == 1 {
        ord & !(1 << 63)
    } else {
        !ord
    })
}

/// Packs `(time, seq)` into one integer whose unsigned order is the
/// queue's total order.
#[inline]
fn pack(time: f64, seq: u64) -> u128 {
    ((time_ord(time) as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> f64 {
    ord_time((key >> 64) as u64)
}

#[inline]
fn unpack_seq(key: u128) -> u64 {
    key as u64
}

/// An [`ARITY`]-ary min-heap of packed keys with a parallel payload-slot
/// array. Compares touch only the dense key array; holes are moved
/// instead of swapped, so a sift writes each visited level once.
#[derive(Debug, Clone, Default)]
struct PackedHeap {
    keys: Vec<u128>,
    slots: Vec<u32>,
}

impl PackedHeap {
    fn with_capacity(cap: usize) -> Self {
        PackedHeap {
            keys: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
        }
    }

    fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn peek(&self) -> Option<u128> {
        self.keys.first().copied()
    }

    fn push(&mut self, key: u128, slot: u32) {
        self.keys.push(key);
        self.slots.push(slot);
        // Sift the hole up from the new leaf.
        let mut i = self.keys.len() - 1;
        while i > 0 {
            let p = (i - 1) / ARITY;
            if self.keys[p] <= key {
                break;
            }
            self.keys[i] = self.keys[p];
            self.slots[i] = self.slots[p];
            i = p;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
    }

    fn pop(&mut self) -> Option<(u128, u32)> {
        let last = self.keys.len().checked_sub(1)?;
        let root = (self.keys[0], self.slots[0]);
        let key = self.keys[last];
        let slot = self.slots[last];
        self.keys.truncate(last);
        self.slots.truncate(last);
        if last == 0 {
            return Some(root);
        }
        // Sift the detached last entry down from the root hole.
        let len = last;
        let mut i = 0;
        loop {
            let first = ARITY * i + 1;
            if first >= len {
                break;
            }
            let stop = (first + ARITY).min(len);
            let mut m = first;
            let mut mk = self.keys[first];
            for c in first + 1..stop {
                let ck = self.keys[c];
                if ck < mk {
                    m = c;
                    mk = ck;
                }
            }
            if mk >= key {
                break;
            }
            self.keys[i] = mk;
            self.slots[i] = self.slots[m];
            i = m;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
        Some(root)
    }

    #[cfg(debug_assertions)]
    fn assert_invariant(&self) {
        for i in 1..self.keys.len() {
            debug_assert!(
                self.keys[(i - 1) / ARITY] <= self.keys[i],
                "heap invariant broken"
            );
        }
    }
}

/// The timing-wheel layer, present only when the delay model promised a
/// strictly positive floor.
#[derive(Debug, Clone)]
struct Calendar {
    /// `1 / w` — multiplied, not divided, on every push.
    inv_width: f64,
    /// Absolute index of the current bucket; events at or before it live
    /// in the near heap.
    cur: u64,
    /// `RING` unsorted buckets of `(key, slot)` entries for buckets in
    /// `(cur, cur + RING)`, addressed modulo `RING`.
    ring: Vec<Vec<(u128, u32)>>,
    /// Entries in all ring buckets combined.
    ring_len: usize,
    /// Events at bucket `cur + RING` or beyond.
    overflow: PackedHeap,
}

impl Calendar {
    /// The absolute bucket of `time`: `⌊time / w⌋`, computed by
    /// multiplication. Monotone in `time` (saturating at the `u64` ends),
    /// which is all region routing needs.
    #[inline]
    fn bucket(&self, time: f64) -> u64 {
        (time * self.inv_width) as u64
    }
}

/// Min-ordered event queue; `T` is the event payload.
#[derive(Debug, Clone)]
pub(crate) struct EventQueue<T> {
    /// The sift-able region holding (at least) every event of the current
    /// bucket; the only region `pop` and `peek_time` look at.
    near: PackedHeap,
    /// The wheel; `None` runs the queue as a plain 4-ary heap.
    calendar: Option<Calendar>,
    /// Slab of payloads addressed by heap/ring slots; `None` marks a free
    /// slot.
    payload: Vec<Option<T>>,
    /// Free slots available for reuse.
    free: Vec<u32>,
    /// Total events across near + ring + overflow.
    len: usize,
}

impl<T> EventQueue<T> {
    /// A plain-heap queue (no calendar layer).
    #[cfg(test)]
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_capacity_and_floor(cap, None)
    }

    /// A queue sharded by the delay floor `w`: `Some(w)` with `w > 0`
    /// enables the timing wheel with `w`-wide buckets; `None` or a
    /// non-positive floor falls back to the plain heap (same pop order,
    /// see the module docs for the rule).
    pub fn with_capacity_and_floor(cap: usize, floor: Option<f64>) -> Self {
        let calendar = floor
            .filter(|w| *w > 0.0 && w.is_finite())
            .map(|w| Calendar {
                inv_width: w.recip(),
                cur: 0,
                ring: (0..RING).map(|_| Vec::new()).collect(),
                ring_len: 0,
                overflow: PackedHeap::default(),
            });
        Self {
            near: PackedHeap::with_capacity(cap),
            calendar,
            payload: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Time of the earliest queued event, if any. The eager invariant
    /// ("non-empty ⇒ near heap non-empty") makes this a borrow of the
    /// near-heap root even in calendar mode.
    pub fn peek_time(&self) -> Option<f64> {
        self.near.peek().map(unpack_time)
    }

    /// Enqueues `item` at `(time, seq)`. `seq` must be unique (the engine
    /// stamps a monotone counter) — ties in `time` break by `seq`.
    pub fn push(&mut self, time: f64, seq: u64, item: T) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.payload[slot as usize] = Some(item);
                slot
            }
            None => {
                let slot = u32::try_from(self.payload.len()).expect("queue slots fit in u32");
                self.payload.push(Some(item));
                slot
            }
        };
        let key = pack(time, seq);
        match &mut self.calendar {
            None => self.near.push(key, slot),
            Some(cal) => {
                let b = cal.bucket(time);
                if self.len == 0 {
                    // Empty queue: re-anchor the wheel at this event so it
                    // lands in the near heap (the invariant's base case).
                    cal.cur = b;
                    self.near.push(key, slot);
                } else if b <= cal.cur {
                    self.near.push(key, slot);
                } else if b - cal.cur < RING as u64 {
                    cal.ring[(b % RING as u64) as usize].push((key, slot));
                    cal.ring_len += 1;
                } else {
                    cal.overflow.push(key, slot);
                }
            }
        }
        self.len += 1;
    }

    /// Removes and returns the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.pop_entry().map(|(time, _, item)| (time, item))
    }

    /// Removes and returns the earliest event as `(time, seq, payload)` —
    /// the full ordering key, needed by the parallel engine's barrier
    /// replay to merge per-partition pop logs into the global order.
    pub fn pop_entry(&mut self) -> Option<(f64, u64, T)> {
        let (key, slot) = self.near.pop()?;
        self.len -= 1;
        if self.near.is_empty() && self.len > 0 {
            self.refill();
        }
        let item = self.payload[slot as usize]
            .take()
            .expect("queue keys always address a live slot");
        self.free.push(slot);
        Some((unpack_time(key), unpack_seq(key), item))
    }

    /// Restores the eager invariant after the near heap drained: advance
    /// the wheel (or jump it across a quiet stretch), migrating overflow
    /// entries that enter the horizon and draining ring buckets into the
    /// near heap until it holds an event again.
    #[cold]
    fn refill(&mut self) {
        let cal = self
            .calendar
            .as_mut()
            .expect("a plain heap drains exactly when the queue is empty");
        while self.near.is_empty() {
            if cal.ring_len == 0 {
                // Quiet wheel: jump straight to the overflow minimum's
                // bucket (`len > 0` guarantees overflow is non-empty).
                let key = cal.overflow.peek().expect("len > 0 with empty ring");
                cal.cur = cal.bucket(unpack_time(key));
            } else {
                cal.cur += 1;
            }
            // Entries now within the horizon leave the overflow heap; the
            // jump case routes its minimum (bucket == cur) into near.
            while let Some(key) = cal.overflow.peek() {
                let b = cal.bucket(unpack_time(key));
                if b - cal.cur >= RING as u64 {
                    break;
                }
                let (key, slot) = cal.overflow.pop().expect("peeked entry exists");
                if b <= cal.cur {
                    self.near.push(key, slot);
                } else {
                    cal.ring[(b % RING as u64) as usize].push((key, slot));
                    cal.ring_len += 1;
                }
            }
            let bucket = &mut cal.ring[(cal.cur % RING as u64) as usize];
            cal.ring_len -= bucket.len();
            for (key, slot) in bucket.drain(..) {
                self.near.push(key, slot);
            }
        }
    }

    /// Rewrites every queued key's `seq` through `f` in place, without
    /// re-heapifying.
    ///
    /// The caller must guarantee `f` is strictly monotone on the seqs
    /// present (it preserves every pairwise `<`), so the heap invariant is
    /// untouched — and region routing depends on time alone, so the
    /// calendar layout is untouched too. The parallel engine uses this at
    /// window barriers to replace provisional partition-local seqs with
    /// their final global values — a mapping that is monotone by
    /// construction (see `parallel.rs`).
    pub fn remap_seqs(&mut self, mut f: impl FnMut(u64) -> u64) {
        let remap = |key: &mut u128, f: &mut dyn FnMut(u64) -> u64| {
            *key = (*key & !(u64::MAX as u128)) | f(unpack_seq(*key)) as u128;
        };
        for key in &mut self.near.keys {
            remap(key, &mut f);
        }
        if let Some(cal) = &mut self.calendar {
            for key in &mut cal.overflow.keys {
                remap(key, &mut f);
            }
            for bucket in &mut cal.ring {
                for (key, _) in bucket {
                    remap(key, &mut f);
                }
            }
        }
        #[cfg(debug_assertions)]
        {
            self.near.assert_invariant();
            if let Some(cal) = &self.calendar {
                cal.overflow.assert_invariant();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_key_order_matches_total_cmp() {
        let values = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            0.5,
            2.0,
            1e300,
            f64::INFINITY,
        ];
        for a in values {
            for b in values {
                assert_eq!(time_ord(a).cmp(&time_ord(b)), a.total_cmp(&b), "{a} vs {b}");
            }
            assert_eq!(ord_time(time_ord(a)).to_bits(), a.to_bits());
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::with_capacity(4);
        q.push(2.0, 0, "a");
        q.push(1.0, 1, "b");
        q.push(1.0, 2, "c");
        q.push(0.5, 3, "d");
        assert_eq!(q.peek_time(), Some(0.5));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(0.5, "d"), (1.0, "b"), (1.0, "c"), (2.0, "a")]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_reuses_slots() {
        let mut q = EventQueue::with_capacity(2);
        for round in 0..100u64 {
            q.push(round as f64, 2 * round, round);
            q.push(round as f64 + 0.5, 2 * round + 1, round + 1000);
            // Pops drain the merged stream in global sorted order, so the
            // r-th pop returns time r/2: an on-the-round entry when r is
            // even, the +0.5 entry of round r/2 when r is odd.
            let (t, v) = q.pop().unwrap();
            if round % 2 == 0 {
                assert_eq!(t, (round / 2) as f64);
                assert_eq!(v, round / 2);
            } else {
                assert_eq!(t, (round / 2) as f64 + 0.5);
                assert_eq!(v, round / 2 + 1000);
            }
        }
        assert_eq!(q.len(), 100);
        // Slab never grew past the high-water mark of live entries.
        assert!(q.payload.len() <= 101);
        let mut last = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn pop_entry_reports_the_seq() {
        let mut q = EventQueue::with_capacity(2);
        q.push(1.0, 7, "x");
        q.push(1.0, 3, "y");
        assert_eq!(q.pop_entry(), Some((1.0, 3, "y")));
        assert_eq!(q.pop_entry(), Some((1.0, 7, "x")));
        assert_eq!(q.pop_entry(), None);
    }

    #[test]
    fn remap_seqs_preserves_pop_order_under_monotone_maps() {
        let mut q = EventQueue::with_capacity(8);
        // Provisional seqs in the high half, finals in the low half, ties in
        // time everywhere — the exact shape the parallel engine produces.
        const P: u64 = 1 << 63;
        q.push(2.0, P + 1, "p1");
        q.push(1.0, 5, "f5");
        q.push(1.0, P, "p0");
        q.push(1.0, 2, "f2");
        // Monotone map: finals fixed, provisionals land above them.
        q.remap_seqs(|s| if s >= P { s - P + 100 } else { s });
        let order: Vec<_> = std::iter::from_fn(|| q.pop_entry()).collect();
        assert_eq!(
            order,
            vec![
                (1.0, 2, "f2"),
                (1.0, 5, "f5"),
                (1.0, 100, "p0"),
                (2.0, 101, "p1"),
            ]
        );
    }

    #[test]
    fn matches_a_sorted_reference_on_mixed_times() {
        let mut q = EventQueue::with_capacity(0);
        // Deterministic pseudo-random times with duplicates.
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut expect = Vec::new();
        for seq in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let time = (x >> 40) as f64 / 256.0; // coarse grid -> many ties
            q.push(time, seq, seq);
            expect.push((time, seq));
        }
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        for (time, seq) in expect {
            assert_eq!(q.pop(), Some((time, seq)));
        }
        assert_eq!(q.pop(), None);
    }

    /// The calendar twin of the reference test: identical pop order with
    /// the wheel engaged, with pushes interleaved into the drain so the
    /// advancing wheel keeps receiving near-, ring-, and overflow-bound
    /// events.
    #[test]
    fn calendar_matches_a_sorted_reference_on_mixed_times() {
        let mut q = EventQueue::with_capacity_and_floor(0, Some(0.25));
        let mut x: u64 = 0x243f6a8885a308d3;
        let mut expect = Vec::new();
        let mut step = |q: &mut EventQueue<u64>, seq: u64, base: f64| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mixed horizons: same-bucket, in-ring, and beyond-the-wheel
            // times (up to 512 floor-widths = 2 * RING buckets ahead).
            let time = base + (x >> 44) as f64 / 8.0;
            q.push(time, seq, seq);
            expect.push((time, seq));
        };
        for seq in 0..400u64 {
            step(&mut q, seq, 0.0);
        }
        let mut popped = Vec::new();
        for seq in 400..800u64 {
            let (t, _, v) = q.pop_entry().unwrap();
            popped.push((t, v));
            step(&mut q, seq, t); // never push into the popped past
        }
        while let Some((t, _, v)) = q.pop_entry() {
            popped.push((t, v));
        }
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        assert_eq!(popped, expect);
    }

    /// `len()` — the number the engine reports to observers as the
    /// heartbeat `queue_depth` — counts all three calendar regions, not
    /// just the near heap, and stays exact while pops migrate entries
    /// between regions.
    #[test]
    fn len_spans_near_ring_and_overflow_regions() {
        let mut q = EventQueue::with_capacity_and_floor(4, Some(1.0));
        let regions = |q: &EventQueue<&str>| {
            let cal = q.calendar.as_ref().unwrap();
            (q.near.keys.len(), cal.ring_len, cal.overflow.keys.len())
        };
        // First push re-anchors the wheel at bucket 10.
        q.push(10.0, 0, "anchor");
        q.push(10.2, 1, "near"); // same bucket -> near heap
        q.push(12.5, 2, "ring"); // 2 buckets ahead -> ring
        q.push(500.0, 3, "overflow"); // past the wheel horizon -> overflow
        assert_eq!(regions(&q), (2, 1, 1));
        assert_eq!(q.len(), 4, "depth must count every region");
        // Draining keeps the count exact as entries migrate ring -> near
        // and overflow -> near on refills.
        let mut expect = 4;
        for name in ["anchor", "near", "ring", "overflow"] {
            let (near, ring, over) = regions(&q);
            assert_eq!(q.len(), near + ring + over);
            assert_eq!(q.pop().map(|(_, v)| v), Some(name));
            expect -= 1;
            assert_eq!(q.len(), expect);
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    /// A long quiet stretch exercises the jump path: the wheel re-anchors
    /// at the overflow minimum instead of stepping through empty buckets.
    #[test]
    fn calendar_jumps_across_quiet_stretches() {
        let mut q = EventQueue::with_capacity_and_floor(4, Some(0.5));
        q.push(0.0, 0, "now");
        q.push(1e6, 1, "far");
        q.push(1e6 + 0.25, 2, "far+");
        q.push(2e9, 3, "farther");
        assert_eq!(q.pop(), Some((0.0, "now")));
        assert_eq!(q.peek_time(), Some(1e6));
        assert_eq!(q.pop(), Some((1e6, "far")));
        assert_eq!(q.pop(), Some((1e6 + 0.25, "far+")));
        assert_eq!(q.pop(), Some((2e9, "farther")));
        assert_eq!(q.pop(), None);
        // Re-anchoring after a full drain works too.
        q.push(5.0, 4, "later");
        assert_eq!(q.pop(), Some((5.0, "later")));
    }

    /// `remap_seqs` must cover all three regions; entries keep their
    /// region (routing is by time alone) and pop in the remapped order.
    #[test]
    fn calendar_remap_covers_all_regions() {
        const P: u64 = 1 << 63;
        let mut q = EventQueue::with_capacity_and_floor(4, Some(1.0));
        q.push(0.5, P, "near");
        q.push(3.5, P + 1, "ring");
        q.push(3.5, 2, "ring-final");
        q.push(1e5, P + 2, "overflow");
        q.remap_seqs(|s| if s >= P { s - P + 10 } else { s });
        let order: Vec<_> = std::iter::from_fn(|| q.pop_entry()).collect();
        assert_eq!(
            order,
            vec![
                (0.5, 10, "near"),
                (3.5, 2, "ring-final"),
                (3.5, 11, "ring"),
                (1e5, 12, "overflow"),
            ]
        );
    }

    /// Steady-state churn in calendar mode reuses slab slots and ring
    /// capacity: the backing stores stop growing at the high-water mark.
    #[test]
    fn calendar_churn_reuses_storage() {
        let mut q = EventQueue::with_capacity_and_floor(2, Some(0.1));
        // Warm up to the steady population.
        for seq in 0..8u64 {
            q.push(seq as f64 * 0.05, seq, seq);
        }
        let payload_high_water = q.payload.len();
        for round in 0..10_000u64 {
            let (t, _, _) = q.pop_entry().unwrap();
            q.push(t + 3.7, 100 + round, round);
        }
        assert_eq!(q.len(), 8);
        assert_eq!(q.payload.len(), payload_high_water);
    }
}
