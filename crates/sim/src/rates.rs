//! Builders for per-node hardware-rate schedules.
//!
//! The paper allows hardware rates to vary arbitrarily in `[1 − ε, 1 + ε]`.
//! These helpers construct the standard environments used by the experiment
//! harness: benign (all nominal), adversarial splits (the rate pattern that
//! builds skew fastest), oscillating rates, and seeded random drift walks.

use gcs_time::{DriftBounds, RateSchedule};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// All nodes run at exactly rate 1 forever.
pub fn nominal(n: usize) -> Vec<RateSchedule> {
    vec![RateSchedule::default(); n]
}

/// All nodes run at the given constant rate.
///
/// # Panics
///
/// Panics if `rate <= 0`.
pub fn constant(n: usize, rate: f64) -> Vec<RateSchedule> {
    vec![RateSchedule::constant(rate).expect("validated by caller contract"); n]
}

/// Maximum-drift split: nodes for which `fast(v)` holds run at `1 + ε`, the
/// rest at `1 − ε`, forever.
///
/// Against two groups split this way, clock skew grows at `2ε` per unit
/// time — the fastest possible divergence, used by the greedy adversaries.
pub fn split(n: usize, drift: DriftBounds, fast: impl Fn(usize) -> bool) -> Vec<RateSchedule> {
    (0..n)
        .map(|v| {
            let rate = if fast(v) {
                drift.max_rate()
            } else {
                drift.min_rate()
            };
            RateSchedule::constant(rate).expect("drift bounds give valid rates")
        })
        .collect()
}

/// A linear rate gradient along node index: node `v` of `n` runs at
/// `1 − ε + 2ε·v/(n−1)` (node 0 slowest, node `n−1` fastest).
///
/// This is the shape of the paper's execution `E₃` (proof of Theorem 7.2),
/// which smears maximal skew along a path so gradually that no node can
/// detect it.
pub fn gradient(n: usize, drift: DriftBounds) -> Vec<RateSchedule> {
    (0..n)
        .map(|v| {
            let frac = if n <= 1 {
                0.0
            } else {
                v as f64 / (n - 1) as f64
            };
            let rate = drift.min_rate() + 2.0 * drift.epsilon() * frac;
            RateSchedule::constant(rate).expect("rates within drift bounds")
        })
        .collect()
}

/// Square-wave rates: each node alternates between `1 + ε` and `1 − ε`
/// every `period`, with odd-indexed nodes in opposite phase.
///
/// # Panics
///
/// Panics if `period <= 0` or `horizon < 0`.
pub fn alternating(n: usize, drift: DriftBounds, period: f64, horizon: f64) -> Vec<RateSchedule> {
    assert!(period > 0.0, "period must be positive");
    assert!(horizon >= 0.0, "horizon must be non-negative");
    (0..n)
        .map(|v| {
            let mut steps = Vec::new();
            let mut t = 0.0;
            let mut high = v % 2 == 0;
            while t <= horizon {
                let rate = if high {
                    drift.max_rate()
                } else {
                    drift.min_rate()
                };
                steps.push((t, rate));
                high = !high;
                t += period;
            }
            RateSchedule::from_steps(steps).expect("constructed valid steps")
        })
        .collect()
}

/// Seeded random drift: each node's rate is redrawn uniformly from
/// `[1 − ε, 1 + ε]` every `step` time until `horizon`.
///
/// # Panics
///
/// Panics if `step <= 0` or `horizon < 0`.
pub fn random_walk(
    n: usize,
    drift: DriftBounds,
    step: f64,
    horizon: f64,
    seed: u64,
) -> Vec<RateSchedule> {
    assert!(step > 0.0, "step must be positive");
    assert!(horizon >= 0.0, "horizon must be non-negative");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut steps = Vec::new();
            let mut t = 0.0;
            while t <= horizon {
                steps.push((t, rng.gen_range(drift.min_rate()..=drift.max_rate())));
                t += step;
            }
            RateSchedule::from_steps(steps).expect("constructed valid steps")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drift() -> DriftBounds {
        DriftBounds::new(0.05).unwrap()
    }

    #[test]
    fn nominal_is_unit_rate() {
        let s = nominal(3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].rate_at(17.0), 1.0);
    }

    #[test]
    fn split_assigns_extremes() {
        let s = split(4, drift(), |v| v < 2);
        assert_eq!(s[0].rate_at(0.0), 1.05);
        assert_eq!(s[1].rate_at(0.0), 1.05);
        assert_eq!(s[2].rate_at(0.0), 0.95);
        assert_eq!(s[3].rate_at(0.0), 0.95);
    }

    #[test]
    fn gradient_interpolates_linearly() {
        let s = gradient(3, drift());
        assert!((s[0].rate_at(0.0) - 0.95).abs() < 1e-12);
        assert!((s[1].rate_at(0.0) - 1.0).abs() < 1e-12);
        assert!((s[2].rate_at(0.0) - 1.05).abs() < 1e-12);
    }

    #[test]
    fn gradient_handles_single_node() {
        let s = gradient(1, drift());
        assert!((s[0].rate_at(0.0) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn alternating_flips_phase_and_parity() {
        let s = alternating(2, drift(), 1.0, 3.0);
        assert_eq!(s[0].rate_at(0.5), 1.05);
        assert_eq!(s[0].rate_at(1.5), 0.95);
        assert_eq!(s[1].rate_at(0.5), 0.95);
        assert_eq!(s[1].rate_at(1.5), 1.05);
    }

    #[test]
    fn random_walk_respects_bounds_and_seed() {
        let a = random_walk(3, drift(), 0.5, 10.0, 11);
        let b = random_walk(3, drift(), 0.5, 10.0, 11);
        assert_eq!(a, b);
        for schedule in &a {
            assert!(schedule.respects(drift()));
        }
    }
}
