//! Execution-wide event tracing: the [`EventSink`] trait and the engine's
//! event vocabulary.
//!
//! The engine emits an [`EngineEvent`] at every transition it performs —
//! node wakes, send events, per-edge transmissions, deliveries, timer
//! arm/cancel/fire, rate-schedule steps, and protocol rate-multiplier
//! changes. A sink installed via
//! [`EngineBuilder::event_sink`](crate::EngineBuilder::event_sink) receives
//! them synchronously, in deterministic execution order, which makes an
//! event stream a *complete, replayable record of the execution*: logical
//! clocks are piecewise linear between events, so nothing happens that the
//! stream does not show.
//!
//! The default sink is [`NullSink`]; its hooks are empty `#[inline]` bodies
//! behind a monomorphized type parameter, so an uninstrumented engine
//! compiles to exactly the pre-observability code (see the
//! `observer_overhead` micro-benchmark).
//!
//! Sinks that need *state* rather than *transitions* (skew observers,
//! invariant watchdogs) additionally implement
//! [`EventSink::snapshot`], which the engine calls after each processed
//! event with the exact logical clock values — but only when
//! [`EventSink::wants_snapshots`] returns `true`, because computing the
//! clock vector costs `O(n)` per event.

use gcs_graph::NodeId;

use crate::delay::DropCause;
use crate::protocol::TimerId;

/// One engine transition, in the order the engine performed it.
///
/// All payloads are plain `Copy` data (no message bodies): the stream
/// describes the *shape* of the execution, which is what the paper's
/// complexity and indistinguishability arguments are about, and keeps
/// recording allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// A node was initialized (spontaneous wake or first delivery).
    Wake {
        /// The initialized node.
        node: NodeId,
        /// Real time of the wake.
        t: f64,
        /// The node's hardware reading at the wake (its `H_v` origin).
        hw: f64,
    },
    /// A protocol issued a send action (one per `send`/`send_all`; the
    /// paper's unit of message complexity, Section 6.1).
    Send {
        /// The sending node.
        node: NodeId,
        /// Real time of the send event.
        t: f64,
        /// The sender's hardware reading.
        hw: f64,
    },
    /// One per-edge message copy left a node.
    Transmit {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Real time of the transmission.
        t: f64,
        /// The real-time delay chosen by the delay model, when it chose
        /// one (`None` for receiver-hardware-targeted deliveries, whose
        /// real delay is only known once the receiver's clock gets there).
        delay: Option<f64>,
    },
    /// The delay model dropped a transmission.
    Drop {
        /// Sender of the dropped copy.
        src: NodeId,
        /// Intended receiver.
        dst: NodeId,
        /// Real time of the drop decision.
        t: f64,
        /// Whether the model itself (e.g. `lossy`) or an injected fault
        /// layer dropped the copy.
        cause: DropCause,
    },
    /// A message reached its receiver.
    Deliver {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Real time of the delivery.
        t: f64,
        /// The receiver's hardware reading at delivery.
        dst_hw: f64,
    },
    /// A timer slot was armed (or re-armed, replacing its previous target).
    TimerSet {
        /// Owning node.
        node: NodeId,
        /// The slot.
        timer: TimerId,
        /// The hardware value at which the slot fires.
        target_hw: f64,
        /// Real time of the arming.
        t: f64,
    },
    /// A pending timer slot was cancelled.
    TimerCancel {
        /// Owning node.
        node: NodeId,
        /// The slot.
        timer: TimerId,
        /// Real time of the cancellation.
        t: f64,
    },
    /// A timer fired.
    TimerFire {
        /// Owning node.
        node: NodeId,
        /// The slot that fired.
        timer: TimerId,
        /// Real time of the firing.
        t: f64,
        /// The node's hardware reading when it fired.
        hw: f64,
    },
    /// A pre-configured hardware rate-schedule step was applied.
    RateStep {
        /// The node whose hardware rate changed.
        node: NodeId,
        /// Real time of the step.
        t: f64,
        /// The new hardware rate.
        rate: f64,
    },
    /// A protocol changed its logical rate multiplier (`A^opt`'s
    /// `setClockRate` decision, Algorithm 3).
    MultiplierChange {
        /// The node whose multiplier changed.
        node: NodeId,
        /// Real time of the change.
        t: f64,
        /// The new multiplier (e.g. `1` or `1 + μ`).
        multiplier: f64,
    },
}

impl EngineEvent {
    /// The real time at which the event occurred.
    pub fn time(&self) -> f64 {
        match *self {
            EngineEvent::Wake { t, .. }
            | EngineEvent::Send { t, .. }
            | EngineEvent::Transmit { t, .. }
            | EngineEvent::Drop { t, .. }
            | EngineEvent::Deliver { t, .. }
            | EngineEvent::TimerSet { t, .. }
            | EngineEvent::TimerCancel { t, .. }
            | EngineEvent::TimerFire { t, .. }
            | EngineEvent::RateStep { t, .. }
            | EngineEvent::MultiplierChange { t, .. } => t,
        }
    }

    /// A short stable label for the event kind (used by metric counters
    /// and the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::Wake { .. } => "wake",
            EngineEvent::Send { .. } => "send",
            EngineEvent::Transmit { .. } => "transmit",
            EngineEvent::Drop { .. } => "drop",
            EngineEvent::Deliver { .. } => "deliver",
            EngineEvent::TimerSet { .. } => "timer_set",
            EngineEvent::TimerCancel { .. } => "timer_cancel",
            EngineEvent::TimerFire { .. } => "timer_fire",
            EngineEvent::RateStep { .. } => "rate_step",
            EngineEvent::MultiplierChange { .. } => "multiplier",
        }
    }
}

/// Receiver of engine transitions (and, optionally, post-event state
/// snapshots).
///
/// All methods have no-op defaults, so a sink implements only what it
/// needs. The trait is object-safe: heterogeneous sinks can be composed
/// behind `Box<dyn EventSink>` when static composition is inconvenient.
pub trait EventSink {
    /// Whether the engine should bother constructing and reporting events.
    ///
    /// [`NullSink`] returns `false`, letting the optimizer erase every
    /// hook in uninstrumented engines.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Called for every engine transition, in execution order.
    #[inline]
    fn record(&mut self, event: &EngineEvent) {
        let _ = event;
    }

    /// Whether the sink wants [`EventSink::snapshot`] calls (they cost an
    /// `O(n)` clock evaluation per processed event).
    #[inline]
    fn wants_snapshots(&self) -> bool {
        false
    }

    /// Called after each processed event — and once at the end of every
    /// [`Engine::run_until`](crate::Engine::run_until) horizon — with the
    /// exact logical clock values of all nodes and the current event-queue
    /// depth.
    #[inline]
    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        let _ = (t, clocks, queue_depth);
    }
}

/// The default sink: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

impl<S: EventSink + ?Sized> EventSink for Box<S> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn record(&mut self, event: &EngineEvent) {
        (**self).record(event);
    }
    fn wants_snapshots(&self) -> bool {
        (**self).wants_snapshots()
    }
    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        (**self).snapshot(t, clocks, queue_depth);
    }
}

impl<S: EventSink> EventSink for Option<S> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(|s| s.enabled())
    }
    fn record(&mut self, event: &EngineEvent) {
        if let Some(s) = self {
            s.record(event);
        }
    }
    fn wants_snapshots(&self) -> bool {
        self.as_ref().is_some_and(|s| s.wants_snapshots())
    }
    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        if let Some(s) = self {
            s.snapshot(t, clocks, queue_depth);
        }
    }
}

macro_rules! tuple_sinks {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: EventSink),+> EventSink for ($($name,)+) {
            fn enabled(&self) -> bool {
                $(self.$idx.enabled())||+
            }
            fn record(&mut self, event: &EngineEvent) {
                $(self.$idx.record(event);)+
            }
            fn wants_snapshots(&self) -> bool {
                $(self.$idx.wants_snapshots())||+
            }
            fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
                $(self.$idx.snapshot(t, clocks, queue_depth);)+
            }
        }
    )*};
}

tuple_sinks! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// A growable, bounded-memory buffer of the most recent events — the
/// "flight recorder" behind the analysis layer's invariant watchdog, usable
/// on its own for debugging.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    events: std::collections::VecDeque<EngineEvent>,
    capacity: usize,
    recorded: u64,
}

impl RingBufferSink {
    /// Creates a buffer holding the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity");
        RingBufferSink {
            events: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &EngineEvent> {
        self.events.iter()
    }

    /// Total number of events recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Drains the buffer, oldest first.
    pub fn drain(&mut self) -> Vec<EngineEvent> {
        self.events.drain(..).collect()
    }
}

impl EventSink for RingBufferSink {
    fn record(&mut self, event: &EngineEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(*event);
        self.recorded += 1;
    }
}

/// A sink that simply collects every event into a `Vec` — handy in tests.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded events, in execution order.
    pub events: Vec<EngineEvent>,
}

impl EventSink for VecSink {
    fn record(&mut self, event: &EngineEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_keeps_last_n() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..5 {
            sink.record(&EngineEvent::Wake {
                node: NodeId(i),
                t: i as f64,
                hw: 0.0,
            });
        }
        assert_eq!(sink.recorded(), 5);
        let kept: Vec<f64> = sink.events().map(|e| e.time()).collect();
        assert_eq!(kept, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(!NullSink.wants_snapshots());
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut sink = (VecSink::default(), RingBufferSink::new(8));
        assert!(sink.enabled());
        sink.record(&EngineEvent::Drop {
            src: NodeId(0),
            dst: NodeId(1),
            t: 1.0,
            cause: DropCause::Model,
        });
        assert_eq!(sink.0.events.len(), 1);
        assert_eq!(sink.1.recorded(), 1);
    }

    #[test]
    fn optional_sink_disabled_when_none() {
        let none: Option<VecSink> = None;
        assert!(!none.enabled());
        let some = Some(VecSink::default());
        assert!(some.enabled());
    }

    #[test]
    fn event_kinds_are_distinct() {
        let kinds = [
            EngineEvent::Wake {
                node: NodeId(0),
                t: 0.0,
                hw: 0.0,
            }
            .kind(),
            EngineEvent::Send {
                node: NodeId(0),
                t: 0.0,
                hw: 0.0,
            }
            .kind(),
            EngineEvent::Transmit {
                src: NodeId(0),
                dst: NodeId(1),
                t: 0.0,
                delay: None,
            }
            .kind(),
            EngineEvent::Drop {
                src: NodeId(0),
                dst: NodeId(1),
                t: 0.0,
                cause: DropCause::Model,
            }
            .kind(),
            EngineEvent::Deliver {
                src: NodeId(0),
                dst: NodeId(1),
                t: 0.0,
                dst_hw: 0.0,
            }
            .kind(),
            EngineEvent::TimerSet {
                node: NodeId(0),
                timer: TimerId(0),
                target_hw: 0.0,
                t: 0.0,
            }
            .kind(),
            EngineEvent::TimerCancel {
                node: NodeId(0),
                timer: TimerId(0),
                t: 0.0,
            }
            .kind(),
            EngineEvent::TimerFire {
                node: NodeId(0),
                timer: TimerId(0),
                t: 0.0,
                hw: 0.0,
            }
            .kind(),
            EngineEvent::RateStep {
                node: NodeId(0),
                t: 0.0,
                rate: 1.0,
            }
            .kind(),
            EngineEvent::MultiplierChange {
                node: NodeId(0),
                t: 0.0,
                multiplier: 1.0,
            }
            .kind(),
        ];
        let mut unique: Vec<&str> = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }
}
