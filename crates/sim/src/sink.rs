//! Execution-wide event tracing: the [`EventSink`] trait and the engine's
//! event vocabulary.
//!
//! The engine emits an [`EngineEvent`] at every transition it performs —
//! node wakes, send events, per-edge transmissions, deliveries, timer
//! arm/cancel/fire, rate-schedule steps, and protocol rate-multiplier
//! changes. A sink installed via
//! [`EngineBuilder::event_sink`](crate::EngineBuilder::event_sink) receives
//! them synchronously, in deterministic execution order, which makes an
//! event stream a *complete, replayable record of the execution*: logical
//! clocks are piecewise linear between events, so nothing happens that the
//! stream does not show.
//!
//! The default sink is [`NullSink`]; its hooks are empty `#[inline]` bodies
//! behind a monomorphized type parameter, so an uninstrumented engine
//! compiles to exactly the pre-observability code (see the
//! `observer_overhead` micro-benchmark).
//!
//! Sinks that need *state* rather than *transitions* (skew observers,
//! invariant watchdogs) additionally implement
//! [`EventSink::snapshot`], which the engine calls after each processed
//! event with the exact logical clock values — but only when
//! [`EventSink::wants_snapshots`] returns `true`, because computing the
//! clock vector costs `O(n)` per event.

use gcs_graph::NodeId;

use crate::delay::DropCause;
use crate::protocol::TimerId;

/// One engine transition, in the order the engine performed it.
///
/// All payloads are plain `Copy` data (no message bodies): the stream
/// describes the *shape* of the execution, which is what the paper's
/// complexity and indistinguishability arguments are about, and keeps
/// recording allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineEvent {
    /// A node was initialized (spontaneous wake or first delivery).
    Wake {
        /// The initialized node.
        node: NodeId,
        /// Real time of the wake.
        t: f64,
        /// The node's hardware reading at the wake (its `H_v` origin).
        hw: f64,
    },
    /// A protocol issued a send action (one per `send`/`send_all`; the
    /// paper's unit of message complexity, Section 6.1).
    Send {
        /// The sending node.
        node: NodeId,
        /// Real time of the send event.
        t: f64,
        /// The sender's hardware reading.
        hw: f64,
    },
    /// One per-edge message copy left a node.
    Transmit {
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Real time of the transmission.
        t: f64,
        /// The real-time delay chosen by the delay model, when it chose
        /// one (`None` for receiver-hardware-targeted deliveries, whose
        /// real delay is only known once the receiver's clock gets there).
        delay: Option<f64>,
    },
    /// The delay model dropped a transmission.
    ///
    /// `dst` is declared first: every variant then leads with its primary
    /// node (the recorder's partition key), which lets the field
    /// extraction compile to a single load instead of a ten-way branch.
    /// Construction and matching use field names, so the order is
    /// invisible to callers.
    Drop {
        /// Intended receiver.
        dst: NodeId,
        /// Sender of the dropped copy.
        src: NodeId,
        /// Real time of the drop decision.
        t: f64,
        /// Whether the model itself (e.g. `lossy`) or an injected fault
        /// layer dropped the copy.
        cause: DropCause,
    },
    /// A message reached its receiver.
    ///
    /// `dst` first, like [`EngineEvent::Drop`] — see there.
    Deliver {
        /// Receiver.
        dst: NodeId,
        /// Sender.
        src: NodeId,
        /// Real time of the delivery.
        t: f64,
        /// The receiver's hardware reading at delivery.
        dst_hw: f64,
    },
    /// A timer slot was armed (or re-armed, replacing its previous target).
    TimerSet {
        /// Owning node.
        node: NodeId,
        /// The slot.
        timer: TimerId,
        /// The hardware value at which the slot fires.
        target_hw: f64,
        /// Real time of the arming.
        t: f64,
    },
    /// A pending timer slot was cancelled.
    TimerCancel {
        /// Owning node.
        node: NodeId,
        /// The slot.
        timer: TimerId,
        /// Real time of the cancellation.
        t: f64,
    },
    /// A timer fired.
    TimerFire {
        /// Owning node.
        node: NodeId,
        /// The slot that fired.
        timer: TimerId,
        /// Real time of the firing.
        t: f64,
        /// The node's hardware reading when it fired.
        hw: f64,
    },
    /// A pre-configured hardware rate-schedule step was applied.
    RateStep {
        /// The node whose hardware rate changed.
        node: NodeId,
        /// Real time of the step.
        t: f64,
        /// The new hardware rate.
        rate: f64,
    },
    /// A protocol changed its logical rate multiplier (`A^opt`'s
    /// `setClockRate` decision, Algorithm 3).
    MultiplierChange {
        /// The node whose multiplier changed.
        node: NodeId,
        /// Real time of the change.
        t: f64,
        /// The new multiplier (e.g. `1` or `1 + μ`).
        multiplier: f64,
    },
}

impl EngineEvent {
    /// The real time at which the event occurred.
    pub fn time(&self) -> f64 {
        match *self {
            EngineEvent::Wake { t, .. }
            | EngineEvent::Send { t, .. }
            | EngineEvent::Transmit { t, .. }
            | EngineEvent::Drop { t, .. }
            | EngineEvent::Deliver { t, .. }
            | EngineEvent::TimerSet { t, .. }
            | EngineEvent::TimerCancel { t, .. }
            | EngineEvent::TimerFire { t, .. }
            | EngineEvent::RateStep { t, .. }
            | EngineEvent::MultiplierChange { t, .. } => t,
        }
    }

    /// A short stable label for the event kind (used by metric counters
    /// and the JSONL encoding).
    pub fn kind(&self) -> &'static str {
        KIND_LABELS[self.kind_index()]
    }

    /// A dense index for the event kind, `0..KIND_COUNT`, stable across
    /// releases: it doubles as the kind byte of the recorder frame layout
    /// (see [`encode_frame`]) and as the slot of preresolved per-kind
    /// counters.
    #[inline]
    pub fn kind_index(&self) -> usize {
        match self {
            EngineEvent::Wake { .. } => 0,
            EngineEvent::Send { .. } => 1,
            EngineEvent::Transmit { .. } => 2,
            EngineEvent::Drop { .. } => 3,
            EngineEvent::Deliver { .. } => 4,
            EngineEvent::TimerSet { .. } => 5,
            EngineEvent::TimerCancel { .. } => 6,
            EngineEvent::TimerFire { .. } => 7,
            EngineEvent::RateStep { .. } => 8,
            EngineEvent::MultiplierChange { .. } => 9,
        }
    }
}

/// Number of distinct [`EngineEvent`] kinds.
pub const KIND_COUNT: usize = 10;

/// Kind labels, indexed by [`EngineEvent::kind_index`].
pub const KIND_LABELS: [&str; KIND_COUNT] = [
    "wake",
    "send",
    "transmit",
    "drop",
    "deliver",
    "timer_set",
    "timer_cancel",
    "timer_fire",
    "rate_step",
    "multiplier",
];

/// Receiver of engine transitions (and, optionally, post-event state
/// snapshots).
///
/// All methods have no-op defaults, so a sink implements only what it
/// needs. The trait is object-safe: heterogeneous sinks can be composed
/// behind `Box<dyn EventSink>` when static composition is inconvenient.
pub trait EventSink {
    /// Whether the engine should bother constructing and reporting events.
    ///
    /// [`NullSink`] returns `false`, letting the optimizer erase every
    /// hook in uninstrumented engines.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Called for every engine transition, in execution order.
    #[inline]
    fn record(&mut self, event: &EngineEvent) {
        let _ = event;
    }

    /// Whether the sink wants [`EventSink::snapshot`] calls (they cost an
    /// `O(n)` clock evaluation per processed event).
    #[inline]
    fn wants_snapshots(&self) -> bool {
        false
    }

    /// Called after each processed event — and once at the end of every
    /// [`Engine::run_until`](crate::Engine::run_until) horizon — with the
    /// exact logical clock values of all nodes and the current event-queue
    /// depth.
    #[inline]
    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        let _ = (t, clocks, queue_depth);
    }
}

/// The default sink: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

impl<S: EventSink + ?Sized> EventSink for Box<S> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    fn record(&mut self, event: &EngineEvent) {
        (**self).record(event);
    }
    fn wants_snapshots(&self) -> bool {
        (**self).wants_snapshots()
    }
    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        (**self).snapshot(t, clocks, queue_depth);
    }
}

impl<S: EventSink> EventSink for Option<S> {
    fn enabled(&self) -> bool {
        self.as_ref().is_some_and(|s| s.enabled())
    }
    fn record(&mut self, event: &EngineEvent) {
        if let Some(s) = self {
            s.record(event);
        }
    }
    fn wants_snapshots(&self) -> bool {
        self.as_ref().is_some_and(|s| s.wants_snapshots())
    }
    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        if let Some(s) = self {
            s.snapshot(t, clocks, queue_depth);
        }
    }
}

macro_rules! tuple_sinks {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: EventSink),+> EventSink for ($($name,)+) {
            fn enabled(&self) -> bool {
                $(self.$idx.enabled())||+
            }
            fn record(&mut self, event: &EngineEvent) {
                $(self.$idx.record(event);)+
            }
            fn wants_snapshots(&self) -> bool {
                $(self.$idx.wants_snapshots())||+
            }
            fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
                $(self.$idx.snapshot(t, clocks, queue_depth);)+
            }
        }
    )*};
}

tuple_sinks! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// A growable, bounded-memory buffer of the most recent events — the
/// "flight recorder" behind the analysis layer's invariant watchdog, usable
/// on its own for debugging.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    events: std::collections::VecDeque<EngineEvent>,
    capacity: usize,
    recorded: u64,
}

impl RingBufferSink {
    /// Creates a buffer holding the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer needs capacity");
        RingBufferSink {
            events: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &EngineEvent> {
        self.events.iter()
    }

    /// Total number of events recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Drains the buffer, oldest first.
    pub fn drain(&mut self) -> Vec<EngineEvent> {
        self.events.drain(..).collect()
    }
}

impl EventSink for RingBufferSink {
    fn record(&mut self, event: &EngineEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(*event);
        self.recorded += 1;
    }
}

/// A sink that simply collects every event into a `Vec` — handy in tests.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// The recorded events, in execution order.
    pub events: Vec<EngineEvent>,
}

impl EventSink for VecSink {
    fn record(&mut self, event: &EngineEvent) {
        self.events.push(*event);
    }
}

// ---------------------------------------------------------------------------
// Flight recorder: fixed-width binary frames in per-partition bounded rings.
// ---------------------------------------------------------------------------

/// Size in bytes of one encoded recorder frame.
///
/// The layout is little-endian and position-fixed:
///
/// | offset | width | field                                                |
/// |--------|-------|------------------------------------------------------|
/// | 0      | 1     | kind byte ([`EngineEvent::kind_index`])              |
/// | 1      | 1     | flags (bit 0: transmit has a delay; bit 1: fault drop)|
/// | 2      | 2     | reserved, must be zero                               |
/// | 4      | 4     | `a`: node / src (u32)                                |
/// | 8      | 4     | `b`: dst / timer slot (u32)                          |
/// | 12     | 4     | reserved, must be zero                               |
/// | 16     | 8     | global record sequence number (u64)                  |
/// | 24     | 8     | event time `t` (f64 bits)                            |
/// | 32     | 8     | `x`: hw / delay / dst_hw / target_hw / rate / mult   |
pub const FRAME_LEN: usize = 40;

/// Magic prefix of a raw binary recorder dump file.
pub const RECORDER_MAGIC: &[u8; 8] = b"GCSREC01";

const FLAG_HAS_DELAY: u8 = 0b0000_0001;
const FLAG_FAULT_CAUSE: u8 = 0b0000_0010;

/// The wire fields of one event, extracted by a single match: kind byte,
/// flags byte, the two u32 payload slots, the time, and the f64 payload
/// slot. Kind values mirror [`EngineEvent::kind_index`].
#[inline]
fn frame_fields(event: &EngineEvent) -> (u8, u8, u32, u32, f64, f64) {
    match *event {
        EngineEvent::Wake { node, t, hw } => (0, 0u8, node.0 as u32, 0u32, t, hw),
        EngineEvent::Send { node, t, hw } => (1, 0, node.0 as u32, 0, t, hw),
        EngineEvent::Transmit { src, dst, t, delay } => (
            2,
            if delay.is_some() { FLAG_HAS_DELAY } else { 0 },
            src.0 as u32,
            dst.0 as u32,
            t,
            delay.unwrap_or(0.0),
        ),
        EngineEvent::Drop { src, dst, t, cause } => (
            3,
            match cause {
                DropCause::Model => 0,
                DropCause::Fault => FLAG_FAULT_CAUSE,
            },
            src.0 as u32,
            dst.0 as u32,
            t,
            0.0,
        ),
        EngineEvent::Deliver {
            src,
            dst,
            t,
            dst_hw,
        } => (4, 0, src.0 as u32, dst.0 as u32, t, dst_hw),
        EngineEvent::TimerSet {
            node,
            timer,
            target_hw,
            t,
        } => (5, 0, node.0 as u32, timer.0, t, target_hw),
        EngineEvent::TimerCancel { node, timer, t } => (6, 0, node.0 as u32, timer.0, t, 0.0),
        EngineEvent::TimerFire { node, timer, t, hw } => (7, 0, node.0 as u32, timer.0, t, hw),
        EngineEvent::RateStep { node, t, rate } => (8, 0, node.0 as u32, 0, t, rate),
        EngineEvent::MultiplierChange {
            node,
            t,
            multiplier,
        } => (9, 0, node.0 as u32, 0, t, multiplier),
    }
}

/// Writes one frame into a [`FRAME_LEN`]-byte slot as five aligned-width
/// `u64` little-endian word stores (the layout packs kind/flags/reserved/a
/// into word 0 and b/reserved into word 1). The slot may hold a stale
/// frame (ring reuse): every byte, including the reserved ranges, is
/// overwritten.
#[inline]
fn encode_frame_into(event: &EngineEvent, seq: u64, frame: &mut [u8; FRAME_LEN]) {
    let (kind, flags, a, b, t, x) = frame_fields(event);
    store_frame(frame, kind, flags, a, b, seq, t, x);
}

/// The five word stores shared by [`encode_frame_into`] and the recorder
/// hot path.
#[allow(clippy::too_many_arguments)]
#[inline]
fn store_frame(
    frame: &mut [u8; FRAME_LEN],
    kind: u8,
    flags: u8,
    a: u32,
    b: u32,
    seq: u64,
    t: f64,
    x: f64,
) {
    let word0 = kind as u64 | (flags as u64) << 8 | (a as u64) << 32;
    frame[0..8].copy_from_slice(&word0.to_le_bytes());
    frame[8..16].copy_from_slice(&(b as u64).to_le_bytes());
    frame[16..24].copy_from_slice(&seq.to_le_bytes());
    frame[24..32].copy_from_slice(&t.to_bits().to_le_bytes());
    frame[32..40].copy_from_slice(&x.to_bits().to_le_bytes());
}

/// Encodes one event (plus its global sequence number) as a recorder frame.
///
/// The encoding is total: every [`EngineEvent`] has exactly one frame, and
/// [`decode_frame`] inverts it bit-exactly (`f64` payloads travel as raw
/// bits, so `-0.0` and subnormals survive).
#[inline]
pub fn encode_frame(event: &EngineEvent, seq: u64) -> [u8; FRAME_LEN] {
    let mut frame = [0u8; FRAME_LEN];
    encode_frame_into(event, seq, &mut frame);
    frame
}

/// Decodes one recorder frame back into its sequence number and event.
///
/// # Errors
///
/// Returns a human-readable reason when `bytes` is not exactly
/// [`FRAME_LEN`] long, carries an unknown kind byte or flag bit, or has
/// nonzero reserved bytes (the cheap misalignment detector).
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, EngineEvent), String> {
    if bytes.len() != FRAME_LEN {
        return Err(format!(
            "frame is {} bytes, expected {FRAME_LEN}",
            bytes.len()
        ));
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let f64_at = |off: usize| f64::from_bits(u64_at(off));

    let kind = bytes[0];
    let flags = bytes[1];
    if flags & !(FLAG_HAS_DELAY | FLAG_FAULT_CAUSE) != 0 {
        return Err(format!("unknown flag bits 0x{flags:02x}"));
    }
    if bytes[2] != 0 || bytes[3] != 0 || u32_at(12) != 0 {
        return Err("nonzero reserved bytes (misaligned or corrupt frame)".into());
    }
    let a = u32_at(4);
    let b = u32_at(8);
    let seq = u64_at(16);
    let t = f64_at(24);
    let x = f64_at(32);
    let node = NodeId(a as usize);
    let src = NodeId(a as usize);
    let dst = NodeId(b as usize);
    let timer = TimerId(b);
    let event = match kind {
        0 => EngineEvent::Wake { node, t, hw: x },
        1 => EngineEvent::Send { node, t, hw: x },
        2 => EngineEvent::Transmit {
            src,
            dst,
            t,
            delay: (flags & FLAG_HAS_DELAY != 0).then_some(x),
        },
        3 => EngineEvent::Drop {
            src,
            dst,
            t,
            cause: if flags & FLAG_FAULT_CAUSE != 0 {
                DropCause::Fault
            } else {
                DropCause::Model
            },
        },
        4 => EngineEvent::Deliver {
            src,
            dst,
            t,
            dst_hw: x,
        },
        5 => EngineEvent::TimerSet {
            node,
            timer,
            target_hw: x,
            t,
        },
        6 => EngineEvent::TimerCancel { node, timer, t },
        7 => EngineEvent::TimerFire {
            node,
            timer,
            t,
            hw: x,
        },
        8 => EngineEvent::RateStep { node, t, rate: x },
        9 => EngineEvent::MultiplierChange {
            node,
            t,
            multiplier: x,
        },
        other => return Err(format!("unknown frame kind byte {other}")),
    };
    Ok((seq, event))
}

/// One partition's bounded ring of `(seq, event)` slots, overwritten
/// oldest-first once full. Slots hold the event verbatim next to its full
/// sequence number: the hot-path store is then a single straight 56-byte
/// `Copy` with no per-kind field shuffling — measured cheaper than every
/// denser layout tried (inline 40-byte wire frames, typed frame-field
/// slots, a split `u32` sequence side-array, a staged L1 buffer), because
/// at ~2.4 events per engine step the bottleneck is store instructions,
/// not ring footprint. Capacity is a power of two, and the write cursor
/// is a monotonic push count masked down on use: deriving the mask from
/// `buf.len()` right at the indexing site lets the compiler prove the
/// index in bounds, so the hot path is one slot store and one increment —
/// no wrap branch, no live-length bookkeeping, no bounds check.
#[derive(Debug, Clone)]
struct EventRing {
    buf: Vec<(u64, EngineEvent)>,
    /// Total slots ever pushed; the next write goes to
    /// `head & (buf.len() - 1)`.
    head: u64,
}

/// The ring slot filler — never observable, overwritten before the live
/// window covers it.
const EMPTY_SLOT: (u64, EngineEvent) = (
    0,
    EngineEvent::Wake {
        node: NodeId(0),
        t: 0.0,
        hw: 0.0,
    },
);

impl EventRing {
    fn new(frames: usize) -> Self {
        EventRing {
            buf: vec![EMPTY_SLOT; frames],
            head: 0,
        }
    }

    #[inline]
    fn push(&mut self, seq: u64, event: &EngineEvent) {
        let mask = self.buf.len() - 1;
        self.buf[(self.head as usize) & mask] = (seq, *event);
        self.head += 1;
    }

    /// Slots currently live (`<= buf.len()`).
    fn len(&self) -> usize {
        (self.head as usize).min(self.buf.len())
    }

    /// Slot at logical position `i` (0 = oldest retained).
    fn slot(&self, i: usize) -> (u64, EngineEvent) {
        debug_assert!(i < self.len());
        let mask = self.buf.len() - 1;
        let start = self.head as usize - self.len();
        self.buf[(start + i) & mask]
    }
}

/// The always-on flight recorder: every engine event is buffered raw into
/// one of several bounded per-partition rings, with **zero allocation at
/// steady state** — all buffers are preallocated at construction (the same
/// bar `NullSink`-style hot paths meet, enforced by `tests/zero_alloc.rs`).
/// The hot path is a plain `Copy` store plus a masked ring advance; the
/// fixed-width binary frame encoding ([`encode_frame`]) is applied only
/// when a window is dumped.
///
/// Events are partitioned by their primary node (`node % partitions`), so
/// one chatty node cannot evict the whole window; a per-slot global
/// sequence number lets [`RecorderSink::window_events`] merge the rings
/// back into exact execution order at dump time. Because partitioning and
/// sequencing are functions of the (deterministic) record order alone, the
/// retained window is byte-identical across `--threads` counts and
/// same-seed reruns.
///
/// One event kind never enters the rings: `Wake`. The offline clock
/// reconstruction cannot anchor a node's trajectory without its wake, and
/// any run longer than the window would evict the wakes (they all happen
/// at the start), leaving a dump that `gcs trace blame` cannot explain.
/// Wakes are pinned in a side table instead — one slot per node, written
/// once at wake time (startup, not steady state) and merged back into
/// sequence order at dump time.
#[derive(Debug, Clone)]
pub struct RecorderSink {
    /// Always a power-of-two count of rings, so the hot path masks
    /// instead of dividing.
    partitions: Vec<EventRing>,
    /// Pinned `Wake` events (see the type-level docs) — bounded by the
    /// node count, never evicted.
    wakes: Vec<(u64, EngineEvent)>,
    seq: u64,
}

/// Default partition count (power of two).
pub const DEFAULT_RECORDER_PARTITIONS: usize = 8;

/// Default retained frames per partition (power of two); with
/// [`DEFAULT_RECORDER_PARTITIONS`] the whole window holds the last
/// `8 * 1024 = 8192` events in under half a megabyte, regardless of
/// run length. The footprint is deliberately small enough to share L2
/// with the engine's own working set — the always-on overhead budget
/// is cache lines, not instructions.
pub const DEFAULT_RECORDER_FRAMES: usize = 1024;

impl Default for RecorderSink {
    fn default() -> Self {
        Self::new()
    }
}

impl RecorderSink {
    /// A recorder with the default geometry
    /// ([`DEFAULT_RECORDER_PARTITIONS`] × [`DEFAULT_RECORDER_FRAMES`]).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_RECORDER_PARTITIONS, DEFAULT_RECORDER_FRAMES)
    }

    /// A recorder with `partitions` rings of `frames` frames each. Both
    /// are rounded up to powers of two; both must be nonzero.
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0` or `frames == 0`.
    pub fn with_geometry(partitions: usize, frames: usize) -> Self {
        assert!(partitions > 0, "recorder needs at least one partition");
        assert!(frames > 0, "recorder partitions need capacity");
        let partitions = partitions.next_power_of_two();
        let frames = frames.next_power_of_two();
        RecorderSink {
            partitions: (0..partitions).map(|_| EventRing::new(frames)).collect(),
            wakes: Vec::new(),
            seq: 0,
        }
    }

    /// Total events recorded over the recorder's lifetime (including
    /// frames already evicted from the window).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events currently retained (pinned wakes plus all partition rings).
    pub fn window_len(&self) -> usize {
        self.wakes.len() + self.partitions.iter().map(|p| p.len()).sum::<usize>()
    }

    /// The retained window as `(seq, event)` pairs merged back into exact
    /// execution order (ascending global sequence number). Allocates —
    /// dump path only.
    fn window_tagged(&self) -> Vec<(u64, EngineEvent)> {
        let mut tagged: Vec<(u64, EngineEvent)> = Vec::with_capacity(self.window_len());
        tagged.extend_from_slice(&self.wakes);
        for ring in &self.partitions {
            for i in 0..ring.len() {
                tagged.push(ring.slot(i));
            }
        }
        tagged.sort_unstable_by_key(|&(seq, _)| seq);
        tagged
    }

    /// The retained window, merged back into exact execution order
    /// (ascending global sequence number). Allocates — dump path only.
    pub fn window_events(&self) -> Vec<EngineEvent> {
        self.window_tagged().into_iter().map(|(_, e)| e).collect()
    }

    /// The retained window serialized as [`encode_frame`] frames in
    /// execution order, prefixed with [`RECORDER_MAGIC`] — the
    /// `--dump-recorder <path>.gcsrec` byte format, decoded by
    /// `gcs-forensics`.
    pub fn window_frames(&self) -> Vec<u8> {
        let tagged = self.window_tagged();
        let mut out = Vec::with_capacity(RECORDER_MAGIC.len() + tagged.len() * FRAME_LEN);
        out.extend_from_slice(RECORDER_MAGIC);
        for (seq, event) in &tagged {
            out.extend_from_slice(&encode_frame(event, *seq));
        }
        out
    }

    /// The primary node of an event — the partition key. Deliveries and
    /// drops belong to the receiver-side partition, so one chatty sender
    /// cannot evict everyone else's history; transmissions belong to the
    /// sender's.
    #[inline]
    fn primary_node(event: &EngineEvent) -> usize {
        match *event {
            EngineEvent::Wake { node, .. }
            | EngineEvent::Send { node, .. }
            | EngineEvent::TimerSet { node, .. }
            | EngineEvent::TimerCancel { node, .. }
            | EngineEvent::TimerFire { node, .. }
            | EngineEvent::RateStep { node, .. }
            | EngineEvent::MultiplierChange { node, .. } => node.0,
            EngineEvent::Transmit { src, .. } => src.0,
            EngineEvent::Drop { dst, .. } | EngineEvent::Deliver { dst, .. } => dst.0,
        }
    }
}

impl EventSink for RecorderSink {
    #[inline]
    fn record(&mut self, event: &EngineEvent) {
        let seq = self.seq;
        self.seq += 1;
        // Wakes are pinned, not rung: one push per node, all at startup
        // (a predictable never-taken branch at steady state).
        if let EngineEvent::Wake { .. } = event {
            self.wakes.push((seq, *event));
            return;
        }
        // Masking with `partitions.len() - 1` (a power of two) right at the
        // indexing site lets the compiler drop the bounds check.
        let p = Self::primary_node(event) & (self.partitions.len() - 1);
        self.partitions[p].push(seq, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_keeps_last_n() {
        let mut sink = RingBufferSink::new(3);
        for i in 0..5 {
            sink.record(&EngineEvent::Wake {
                node: NodeId(i),
                t: i as f64,
                hw: 0.0,
            });
        }
        assert_eq!(sink.recorded(), 5);
        let kept: Vec<f64> = sink.events().map(|e| e.time()).collect();
        assert_eq!(kept, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(!NullSink.wants_snapshots());
    }

    #[test]
    fn tuple_sink_fans_out() {
        let mut sink = (VecSink::default(), RingBufferSink::new(8));
        assert!(sink.enabled());
        sink.record(&EngineEvent::Drop {
            src: NodeId(0),
            dst: NodeId(1),
            t: 1.0,
            cause: DropCause::Model,
        });
        assert_eq!(sink.0.events.len(), 1);
        assert_eq!(sink.1.recorded(), 1);
    }

    #[test]
    fn optional_sink_disabled_when_none() {
        let none: Option<VecSink> = None;
        assert!(!none.enabled());
        let some = Some(VecSink::default());
        assert!(some.enabled());
    }

    #[test]
    fn event_kinds_are_distinct() {
        let kinds = [
            EngineEvent::Wake {
                node: NodeId(0),
                t: 0.0,
                hw: 0.0,
            }
            .kind(),
            EngineEvent::Send {
                node: NodeId(0),
                t: 0.0,
                hw: 0.0,
            }
            .kind(),
            EngineEvent::Transmit {
                src: NodeId(0),
                dst: NodeId(1),
                t: 0.0,
                delay: None,
            }
            .kind(),
            EngineEvent::Drop {
                src: NodeId(0),
                dst: NodeId(1),
                t: 0.0,
                cause: DropCause::Model,
            }
            .kind(),
            EngineEvent::Deliver {
                src: NodeId(0),
                dst: NodeId(1),
                t: 0.0,
                dst_hw: 0.0,
            }
            .kind(),
            EngineEvent::TimerSet {
                node: NodeId(0),
                timer: TimerId(0),
                target_hw: 0.0,
                t: 0.0,
            }
            .kind(),
            EngineEvent::TimerCancel {
                node: NodeId(0),
                timer: TimerId(0),
                t: 0.0,
            }
            .kind(),
            EngineEvent::TimerFire {
                node: NodeId(0),
                timer: TimerId(0),
                t: 0.0,
                hw: 0.0,
            }
            .kind(),
            EngineEvent::RateStep {
                node: NodeId(0),
                t: 0.0,
                rate: 1.0,
            }
            .kind(),
            EngineEvent::MultiplierChange {
                node: NodeId(0),
                t: 0.0,
                multiplier: 1.0,
            }
            .kind(),
        ];
        let mut unique: Vec<&str> = kinds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), kinds.len());
    }

    /// One event of every shape the codec must carry, including both
    /// transmit-delay forms and both drop causes.
    fn all_events() -> Vec<EngineEvent> {
        vec![
            EngineEvent::Wake {
                node: NodeId(3),
                t: 1.5,
                hw: 0.25,
            },
            EngineEvent::Send {
                node: NodeId(0),
                t: 2.0,
                hw: 1.75,
            },
            EngineEvent::Transmit {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.0,
                delay: Some(0.5),
            },
            EngineEvent::Transmit {
                src: NodeId(1),
                dst: NodeId(2),
                t: 2.5,
                delay: None,
            },
            EngineEvent::Drop {
                src: NodeId(2),
                dst: NodeId(3),
                t: 3.0,
                cause: DropCause::Model,
            },
            EngineEvent::Drop {
                src: NodeId(3),
                dst: NodeId(4),
                t: 3.5,
                cause: DropCause::Fault,
            },
            EngineEvent::Deliver {
                src: NodeId(0),
                dst: NodeId(1),
                t: 2.5,
                dst_hw: 2.4,
            },
            EngineEvent::TimerSet {
                node: NodeId(5),
                timer: TimerId(2),
                target_hw: 7.0,
                t: 4.0,
            },
            EngineEvent::TimerCancel {
                node: NodeId(5),
                timer: TimerId(2),
                t: 4.5,
            },
            EngineEvent::TimerFire {
                node: NodeId(6),
                timer: TimerId(0),
                t: 5.0,
                hw: 5.1,
            },
            EngineEvent::RateStep {
                node: NodeId(7),
                t: 6.0,
                rate: 1.01,
            },
            EngineEvent::MultiplierChange {
                node: NodeId(7),
                t: 6.5,
                multiplier: 1.25,
            },
        ]
    }

    #[test]
    fn frames_round_trip_every_event_shape() {
        for (i, event) in all_events().iter().enumerate() {
            let seq = i as u64 * 1_000_003;
            let frame = encode_frame(event, seq);
            let (got_seq, got) = decode_frame(&frame).unwrap();
            assert_eq!(got_seq, seq);
            assert_eq!(&got, event, "frame {i} did not round-trip");
        }
    }

    #[test]
    fn frames_preserve_f64_bit_patterns() {
        let event = EngineEvent::Wake {
            node: NodeId(0),
            t: -0.0,
            hw: f64::MIN_POSITIVE / 2.0, // subnormal
        };
        let (_, got) = decode_frame(&encode_frame(&event, 0)).unwrap();
        let EngineEvent::Wake { t, hw, .. } = got else {
            panic!("wrong kind");
        };
        assert_eq!(t.to_bits(), (-0.0f64).to_bits());
        assert_eq!(hw.to_bits(), (f64::MIN_POSITIVE / 2.0).to_bits());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_frame(&[0u8; 12]).is_err(), "short frame");
        let mut frame = encode_frame(
            &EngineEvent::Wake {
                node: NodeId(0),
                t: 0.0,
                hw: 0.0,
            },
            0,
        );
        frame[0] = 200;
        assert!(decode_frame(&frame).is_err(), "unknown kind byte");
        frame[0] = 0;
        frame[1] = 0b1000_0000;
        assert!(decode_frame(&frame).is_err(), "unknown flag bit");
        frame[1] = 0;
        frame[2] = 1;
        assert!(decode_frame(&frame).is_err(), "nonzero reserved byte");
    }

    #[test]
    fn recorder_window_merges_partitions_in_execution_order() {
        let mut rec = RecorderSink::with_geometry(4, 64);
        let events = all_events();
        for event in &events {
            rec.record(event);
        }
        assert_eq!(rec.recorded(), events.len() as u64);
        assert_eq!(rec.window_len(), events.len());
        assert_eq!(rec.window_events(), events);
    }

    #[test]
    fn recorder_evicts_per_partition_oldest_first() {
        // One partition, capacity 4: only the last four survive.
        let mut rec = RecorderSink::with_geometry(1, 4);
        for i in 0..10 {
            rec.record(&EngineEvent::Send {
                node: NodeId(i),
                t: i as f64,
                hw: 0.0,
            });
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.window_len(), 4);
        let times: Vec<f64> = rec.window_events().iter().map(|e| e.time()).collect();
        assert_eq!(times, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn recorder_partitions_isolate_chatty_nodes() {
        // Two partitions of 4; node 0 floods its own partition while node 1
        // speaks once early — node 1's event must survive the flood.
        let mut rec = RecorderSink::with_geometry(2, 4);
        rec.record(&EngineEvent::Send {
            node: NodeId(1),
            t: 0.0,
            hw: 0.0,
        });
        for i in 0..100 {
            rec.record(&EngineEvent::Send {
                node: NodeId(0),
                t: 1.0 + i as f64,
                hw: 0.0,
            });
        }
        let window = rec.window_events();
        assert_eq!(window.len(), 5);
        assert_eq!(window[0].time(), 0.0, "early event on quiet node survives");
    }

    #[test]
    fn recorder_pins_wakes_past_any_eviction() {
        // A single ring of 4 flooded by 100 sends: the wake at seq 0 must
        // still lead the window, or a dump of a long run could never be
        // clock-reconstructed.
        let mut rec = RecorderSink::with_geometry(1, 4);
        rec.record(&EngineEvent::Wake {
            node: NodeId(0),
            t: 0.0,
            hw: 0.0,
        });
        for i in 0..100 {
            rec.record(&EngineEvent::Send {
                node: NodeId(0),
                t: 1.0 + i as f64,
                hw: 0.0,
            });
        }
        assert_eq!(rec.recorded(), 101);
        assert_eq!(rec.window_len(), 5);
        let window = rec.window_events();
        assert!(
            matches!(window[0], EngineEvent::Wake { .. }),
            "the wake survives the flood"
        );
        assert_eq!(window[1].time(), 97.0, "rings still evict oldest-first");
    }

    #[test]
    fn recorder_raw_dump_has_magic_and_ordered_frames() {
        let mut rec = RecorderSink::with_geometry(4, 64);
        let events = all_events();
        for event in &events {
            rec.record(event);
        }
        let bytes = rec.window_frames();
        assert_eq!(&bytes[..8], RECORDER_MAGIC);
        assert_eq!((bytes.len() - 8) % FRAME_LEN, 0);
        let mut decoded = Vec::new();
        let mut last_seq = None;
        for chunk in bytes[8..].chunks(FRAME_LEN) {
            let (seq, event) = decode_frame(chunk).unwrap();
            assert!(last_seq < Some(seq), "frames must be seq-ascending");
            last_seq = Some(seq);
            decoded.push(event);
        }
        assert_eq!(decoded, events);
    }
}
