//! Discrete clock ticks (paper Section 8.4).
//!
//! Real hardware clocks do not offer continuous time: they emit *ticks* at
//! some frequency `f`, and a node can act — read its clock, process a
//! message, send — only on a tick. [`Ticked`] wraps any [`Protocol`] with
//! that semantics:
//!
//! * messages arriving between ticks are buffered and handed to the inner
//!   protocol at the next tick boundary,
//! * timers the inner protocol arms are rounded *up* to the tick grid,
//! * the wrapped protocol therefore only ever observes tick-aligned
//!   hardware readings.
//!
//! The paper's Section 8.4 (citing the companion analysis) states the
//! effect: the achievable skew bounds replace `𝒯` by `max(1/f, 𝒯)` — the
//! granularity is free while ticks are finer than the delay uncertainty
//! and dominates beyond (experiment F13).

use gcs_graph::NodeId;

use crate::protocol::{Action, Context, Protocol, TimerId};

/// Reserved timer slot for the tick heartbeat (inner protocols must not
/// use it).
const TICK_SLOT: TimerId = TimerId(u32::MAX);

/// A protocol adapter imposing discrete clock ticks of the given hardware
/// period on the wrapped protocol.
///
/// # Example
///
/// ```
/// use gcs_sim::{ConstantDelay, Engine, Ticked};
/// # use gcs_sim::{Context, Protocol, TimerId};
/// # #[derive(Clone, Debug)]
/// # struct P { heard_at: Vec<f64> }
/// # impl Protocol for P {
/// #     type Msg = ();
/// #     fn on_start(&mut self, ctx: &mut Context<'_, ()>) { ctx.send_all(()); }
/// #     fn on_message(&mut self, ctx: &mut Context<'_, ()>, _: gcs_graph::NodeId, _: ()) {
/// #         self.heard_at.push(ctx.hw());
/// #     }
/// #     fn on_timer(&mut self, _: &mut Context<'_, ()>, _: TimerId) {}
/// #     fn logical_value(&self, hw: f64) -> f64 { hw }
/// # }
/// let graph = gcs_graph::topology::path(2);
/// let nodes = vec![Ticked::new(P { heard_at: vec![] }, 0.25); 2];
/// let mut engine = Engine::builder(graph)
///     .protocols(nodes)
///     .delay_model(ConstantDelay::new(0.1))
///     .build();
/// engine.wake_all_at(0.0);
/// engine.run_until(2.0);
/// // Every observation the inner protocol made sits on the 0.25 tick grid.
/// for &hw in &engine.protocol(gcs_graph::NodeId(1)).inner().heard_at {
///     assert!((hw / 0.25 - (hw / 0.25).round()).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Ticked<P: Protocol> {
    inner: P,
    period: f64,
    buffer: Vec<(NodeId, P::Msg)>,
    /// Scratch the tick handler drains `buffer` through, so both vectors
    /// keep their capacity across ticks (no steady-state allocation).
    batch: Vec<(NodeId, P::Msg)>,
}

impl<P: Protocol> Ticked<P> {
    /// Wraps `inner` with a tick period (hardware units).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite.
    pub fn new(inner: P, period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "invalid tick period {period}"
        );
        Ticked {
            inner,
            period,
            buffer: Vec::new(),
            batch: Vec::new(),
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The tick period.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Smallest tick-grid value at or above `hw` (with floating-point
    /// forgiveness for values already on the grid).
    fn round_up(&self, hw: f64) -> f64 {
        (hw / self.period - 1e-9).ceil() * self.period
    }

    /// Rounds the targets of any timers the inner protocol armed up to the
    /// tick grid (the engine fires them exactly, so rounding here suffices).
    fn quantize_actions(&self, ctx: &mut Context<'_, P::Msg>) {
        for action in ctx.actions.iter_mut() {
            if let Action::SetTimer { timer, target_hw } = action {
                assert_ne!(*timer, TICK_SLOT, "inner protocol used the tick slot");
                *target_hw = self.round_up(*target_hw);
            }
        }
    }
}

impl<P: Protocol> Protocol for Ticked<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<'_, P::Msg>) {
        // Hardware clocks start at 0, which is on every grid.
        self.inner.on_start(ctx);
        self.quantize_actions(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, P::Msg>, from: NodeId, msg: P::Msg) {
        // Buffer until the next tick; arm (or re-arm) the heartbeat.
        self.buffer.push((from, msg));
        ctx.set_timer(TICK_SLOT, self.round_up(ctx.hw()));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, P::Msg>, timer: TimerId) {
        if timer == TICK_SLOT {
            let mut batch = std::mem::take(&mut self.batch);
            std::mem::swap(&mut batch, &mut self.buffer);
            for (from, msg) in batch.drain(..) {
                self.inner.on_message(ctx, from, msg);
            }
            self.batch = batch;
        } else {
            self.inner.on_timer(ctx, timer);
        }
        self.quantize_actions(ctx);
    }

    fn logical_value(&self, hw: f64) -> f64 {
        self.inner.logical_value(hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstantDelay, Engine};

    #[derive(Debug, Clone, Default)]
    struct Probe {
        message_hws: Vec<f64>,
        timer_hws: Vec<f64>,
    }

    impl Protocol for Probe {
        type Msg = u8;

        fn on_start(&mut self, ctx: &mut Context<'_, u8>) {
            ctx.send_all(1);
            ctx.set_timer(TimerId(0), 0.37); // off-grid target
        }

        fn on_message(&mut self, ctx: &mut Context<'_, u8>, _from: NodeId, _msg: u8) {
            self.message_hws.push(ctx.hw());
        }

        fn on_timer(&mut self, ctx: &mut Context<'_, u8>, _timer: TimerId) {
            self.timer_hws.push(ctx.hw());
        }

        fn logical_value(&self, hw: f64) -> f64 {
            hw
        }
    }

    fn on_grid(x: f64, period: f64) -> bool {
        (x / period - (x / period).round()).abs() < 1e-9
    }

    #[test]
    fn messages_are_deferred_to_tick_boundaries() {
        let g = gcs_graph::topology::path(2);
        let period = 0.25;
        let mut engine = Engine::builder(g)
            .protocols(vec![Ticked::new(Probe::default(), period); 2])
            .delay_model(ConstantDelay::new(0.1))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(3.0);
        for v in 0..2 {
            let probe = engine.protocol(NodeId(v)).inner();
            assert!(!probe.message_hws.is_empty());
            for &hw in &probe.message_hws {
                assert!(on_grid(hw, period), "message handled off-grid at {hw}");
            }
            // Message sent at hw 0 with 0.1 delay arrives at hw 0.1, so the
            // inner protocol sees it at the 0.25 tick.
            assert!((probe.message_hws[0] - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn timers_are_rounded_up_to_the_grid() {
        let g = gcs_graph::topology::path(1);
        let period = 0.25;
        let mut engine = Engine::builder(g)
            .protocols(vec![Ticked::new(Probe::default(), period)])
            .delay_model(ConstantDelay::new(0.0))
            .build();
        engine.wake(NodeId(0), 0.0);
        engine.run_until(2.0);
        let probe = engine.protocol(NodeId(0)).inner();
        assert_eq!(probe.timer_hws.len(), 1);
        // Requested 0.37 → fires at 0.5.
        assert!((probe.timer_hws[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn on_grid_targets_stay_put() {
        let t = Ticked::new(Probe::default(), 0.25);
        assert!((t.round_up(0.5) - 0.5).abs() < 1e-12);
        assert!(
            (t.round_up(0.500000001) - 0.75).abs() < 1e-9
                || (t.round_up(0.500000001) - 0.5).abs() < 1e-9
        );
        assert!((t.round_up(0.51) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid tick period")]
    fn rejects_zero_period() {
        let _ = Ticked::new(Probe::default(), 0.0);
    }
}
