//! Profiling must be purely observational: the exact same execution —
//! event for event, clock for clock — with `profiling(true)` and
//! `profiling(false)`.
//!
//! [`gcs_sim::EngineProfile`] only reads `Instant` around existing phases;
//! it never touches the event queue, the clocks, or the sink. These tests
//! pin that down across protocols, delay models, and drifting rates, so
//! `gcs run --profile` can never change what a run produces.

use gcs_core::{AOpt, NoSync, Params};
use gcs_graph::topology;
use gcs_sim::{ConstantDelay, DelayModel, Engine, EngineEvent, Protocol, UniformDelay, VecSink};
use gcs_time::{DriftBounds, RateSchedule};

fn run<P: Protocol, D: DelayModel>(
    protocols: Vec<P>,
    delay: D,
    schedules: Vec<RateSchedule>,
    horizon: f64,
    profiling: bool,
) -> (Vec<EngineEvent>, Vec<f64>) {
    let n = protocols.len();
    let mut engine = Engine::builder(topology::path(n))
        .protocols(protocols)
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(VecSink::default())
        .profiling(profiling)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(horizon);
    let logical = engine.logical_values();
    (engine.into_sink().events, logical)
}

#[test]
fn profiling_leaves_aopt_event_stream_identical() {
    let params = Params::recommended(0.02, 0.25).unwrap();
    let drift = DriftBounds::new(0.02).unwrap();
    let n = 9;
    let schedules = gcs_sim::rates::random_walk(n, drift, 1.0, 60.0, 11);
    let make = |profiling| {
        run(
            vec![AOpt::new(params); n],
            UniformDelay::new(0.25, 5),
            schedules.clone(),
            60.0,
            profiling,
        )
    };
    let (events_off, clocks_off) = make(false);
    let (events_on, clocks_on) = make(true);
    assert!(!events_off.is_empty());
    assert_eq!(events_off, events_on, "event streams must match exactly");
    assert_eq!(clocks_off, clocks_on, "final clocks must match exactly");
}

#[test]
fn profiling_leaves_nosync_event_stream_identical() {
    let drift = DriftBounds::new(0.05).unwrap();
    let n = 4;
    let schedules = gcs_sim::rates::split(n, drift, |v| v < 2);
    let make = |profiling| {
        run(
            vec![NoSync; n],
            ConstantDelay::new(0.1),
            schedules.clone(),
            30.0,
            profiling,
        )
    };
    assert_eq!(make(false), make(true));
}

#[test]
fn profile_accounts_for_the_run() {
    let params = Params::recommended(0.02, 0.25).unwrap();
    let n = 5;
    let mut engine = Engine::builder(topology::path(n))
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(0.25, 5))
        .profiling(true)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(30.0);
    let profile = engine.profile().expect("profiling was enabled");
    assert!(profile.events > 0);
    assert!(profile.protocol_calls > 0);
    assert!(profile.delay_calls > 0);
    assert!(profile.dispatch > std::time::Duration::ZERO);
    // `other()` is a saturating residual, so it is well-defined even under
    // timer-resolution noise.
    let _ = profile.other();

    // Without the builder flag there is no profile at all — the disabled
    // path carries no timing state.
    let mut engine = Engine::builder(topology::path(n))
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(0.25, 5))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(30.0);
    assert!(engine.profile().is_none());
}

#[test]
fn wall_time_accounting_stays_within_elapsed() {
    let params = Params::recommended(0.02, 0.25).unwrap();
    let n = 8;
    let run = |threads: usize| {
        let mut engine = Engine::builder(topology::path(n))
            .protocols(vec![AOpt::new(params); n])
            .delay_model(ConstantDelay::new(0.125))
            .profiling(true)
            .build();
        engine.wake_all_at(0.0);
        let started = std::time::Instant::now();
        if threads > 1 {
            engine.run_until_threaded(60.0, threads);
        } else {
            engine.run_until(60.0);
        }
        let elapsed = started.elapsed();
        (
            engine.profile().expect("profiling was enabled").clone(),
            elapsed,
        )
    };
    for threads in [1usize, 4] {
        let (p, elapsed) = run(threads);
        assert!(p.events > 0);
        // Named phases are nested inside dispatch, and dispatch inside the
        // run — the sums can never exceed the containing interval.
        let phases = p.protocol + p.delay + p.snapshot;
        assert!(
            phases <= p.dispatch,
            "phase sum {phases:?} exceeds dispatch {:?} at {threads} thread(s)",
            p.dispatch
        );
        assert!(
            p.dispatch <= elapsed,
            "dispatch {:?} exceeds run elapsed {elapsed:?} at {threads} thread(s)",
            p.dispatch
        );
        if threads > 1 {
            assert_eq!(p.par_workers, threads as u64);
            assert!(
                p.par_windows > 0,
                "const delay must admit lookahead windows"
            );
            // The parallel phase is part of dispatch, the serial barrier
            // part of the parallel phase, and a partition can at most idle
            // for a whole window.
            assert!(p.par_wall <= p.dispatch);
            assert!(p.par_replay <= p.par_wall);
            assert!(p.par_idle <= p.par_wall * p.par_workers as u32);
        } else {
            assert_eq!((p.par_workers, p.par_windows), (0, 0));
            assert_eq!(p.par_wall, std::time::Duration::ZERO);
        }
    }
}
