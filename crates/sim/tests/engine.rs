//! Behavioural tests of the discrete-event engine.

use gcs_graph::{topology, NodeId};
use gcs_sim::{
    ConstantDelay, Context, DelayCtx, Delivery, Engine, FnDelay, Protocol, TimerId, UniformDelay,
};
use gcs_time::RateSchedule;

/// A protocol that records everything that happens to it.
#[derive(Debug, Clone, Default)]
struct Recorder {
    started_at_hw: Option<f64>,
    messages: Vec<(NodeId, u32, f64)>, // (from, payload, hw at delivery)
    timer_fires: Vec<(u32, f64)>,      // (timer id, hw at fire)
    announce_on_start: bool,
    timer_request: Option<(u32, f64)>, // set this timer at start
}

impl Protocol for Recorder {
    type Msg = u32;

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        self.started_at_hw = Some(ctx.hw());
        if self.announce_on_start {
            ctx.send_all(ctx.me().index() as u32);
        }
        if let Some((id, target)) = self.timer_request {
            ctx.set_timer(TimerId(id), target);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, msg: u32) {
        self.messages.push((from, msg, ctx.hw()));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, timer: TimerId) {
        self.timer_fires.push((timer.0, ctx.hw()));
    }

    fn logical_value(&self, hw: f64) -> f64 {
        hw
    }
}

fn recorders(n: usize) -> Vec<Recorder> {
    vec![Recorder::default(); n]
}

#[test]
fn constant_delay_delivers_on_time() {
    let g = topology::path(2);
    let mut protos = recorders(2);
    protos[0].announce_on_start = true;
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.5))
        .build();
    engine.wake(NodeId(0), 1.0);
    engine.run_until(2.0);
    let r1 = engine.protocol(NodeId(1));
    // Node 1 was woken by the message at t = 1.5; its hw clock read 0 then.
    assert_eq!(r1.messages.len(), 1);
    assert_eq!(r1.messages[0].0, NodeId(0));
    assert_eq!(r1.messages[0].2, 0.0);
    assert_eq!(r1.started_at_hw, Some(0.0));
    // Node 1's hardware clock started at 1.5 and runs at rate 1.
    assert!((engine.hardware_value(NodeId(1)) - 0.5).abs() < 1e-12);
}

#[test]
fn wake_is_idempotent_after_message_initialization() {
    let g = topology::path(2);
    let mut protos = recorders(2);
    protos[0].announce_on_start = true;
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.0))
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.wake(NodeId(1), 5.0); // after it was already woken by the message
    engine.run_until(10.0);
    // started exactly once, at the message arrival
    assert_eq!(engine.protocol(NodeId(1)).started_at_hw, Some(0.0));
    assert!((engine.hardware_value(NodeId(1)) - 10.0).abs() < 1e-12);
}

#[test]
fn hardware_timer_fires_at_target_value() {
    let g = topology::path(1);
    let mut protos = recorders(1);
    protos[0].timer_request = Some((7, 3.0));
    let schedule = RateSchedule::constant(0.5).unwrap();
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.0))
        .rate_schedules(vec![schedule])
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(10.0);
    let r = engine.protocol(NodeId(0));
    assert_eq!(r.timer_fires.len(), 1);
    assert_eq!(r.timer_fires[0].0, 7);
    // H reaches 3.0 at t = 6.0 under rate 0.5.
    assert!((r.timer_fires[0].1 - 3.0).abs() < 1e-12);
}

#[test]
fn timer_reschedules_across_rate_speedup() {
    // Rate jumps from 0.5 to 2.0 at t = 2 (H = 1). Target H = 3 is then
    // reached at t = 3, not at the originally computed t = 6.
    let g = topology::path(1);
    let mut protos = recorders(1);
    protos[0].timer_request = Some((0, 3.0));
    let schedule = RateSchedule::from_steps(vec![(0.0, 0.5), (2.0, 2.0)]).unwrap();
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.0))
        .rate_schedules(vec![schedule])
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(2.5);
    assert!(engine.protocol(NodeId(0)).timer_fires.is_empty());
    engine.run_until(3.5);
    let fires = &engine.protocol(NodeId(0)).timer_fires;
    assert_eq!(fires.len(), 1);
    assert!((fires[0].1 - 3.0).abs() < 1e-12);
}

#[test]
fn timer_does_not_fire_early_across_rate_slowdown() {
    // Rate drops from 2.0 to 0.25 at t = 1 (H = 2). Target H = 4 is then
    // reached at t = 9, not at the originally computed t = 2.
    let g = topology::path(1);
    let mut protos = recorders(1);
    protos[0].timer_request = Some((0, 4.0));
    let schedule = RateSchedule::from_steps(vec![(0.0, 2.0), (1.0, 0.25)]).unwrap();
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.0))
        .rate_schedules(vec![schedule])
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(8.9);
    assert!(engine.protocol(NodeId(0)).timer_fires.is_empty());
    engine.run_until(9.1);
    let fires = &engine.protocol(NodeId(0)).timer_fires;
    assert_eq!(fires.len(), 1);
    assert!((fires[0].1 - 4.0).abs() < 1e-9);
}

#[test]
fn manual_rate_override_reschedules_timers() {
    let g = topology::path(1);
    let mut protos = recorders(1);
    protos[0].timer_request = Some((0, 10.0));
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.0))
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(5.0);
    engine.set_hardware_rate(NodeId(0), 5.0); // H = 5 now, reaches 10 at t = 6
    engine.run_until(7.0);
    let fires = &engine.protocol(NodeId(0)).timer_fires;
    assert_eq!(fires.len(), 1);
    assert!((fires[0].1 - 10.0).abs() < 1e-9);
}

#[test]
fn hardware_targeted_delivery_waits_for_receiver_clock() {
    // Node 1 runs at rate 0.5. A message sent at t = 1 targeted at receiver
    // hw value 2.0 must arrive at t = 4 (H_1(4) = 2).
    let g = topology::path(2);
    let mut protos = recorders(2);
    protos[0].announce_on_start = true;
    let schedules = vec![
        RateSchedule::constant(1.0).unwrap(),
        RateSchedule::constant(0.5).unwrap(),
    ];
    let delay = FnDelay::new(|_: &DelayCtx<'_>| Delivery::AtReceiverHw(2.0), Some(1.0));
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(1.0);
    // re-wake node 0 does nothing; instead send from node 0 at t=1 via timer…
    // node 0 announced at t = 0 already; the message targeted H_1 = 2.
    engine.run_until(3.9);
    assert!(engine.protocol(NodeId(1)).messages.is_empty());
    engine.run_until(4.1);
    let msgs = &engine.protocol(NodeId(1)).messages;
    assert_eq!(msgs.len(), 1);
    assert!((msgs[0].2 - 2.0).abs() < 1e-12);
}

#[test]
fn hardware_targeted_delivery_tracks_rate_changes() {
    let g = topology::path(2);
    let mut protos = recorders(2);
    protos[0].announce_on_start = true;
    let schedules = vec![
        RateSchedule::constant(1.0).unwrap(),
        RateSchedule::from_steps(vec![(0.0, 0.5), (2.0, 4.0)]).unwrap(),
    ];
    let delay = FnDelay::new(|_: &DelayCtx<'_>| Delivery::AtReceiverHw(3.0), Some(1.0));
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    // H_1: 0.5t until t=2 (H=1), then 4/s; reaches 3 at t = 2.5.
    engine.run_until(2.4);
    assert!(engine.protocol(NodeId(1)).messages.is_empty());
    engine.run_until(2.6);
    assert_eq!(engine.protocol(NodeId(1)).messages.len(), 1);
}

#[test]
fn message_stats_count_broadcasts_and_transmissions() {
    let g = topology::star(4); // hub 0 with 3 leaves
    let mut protos = recorders(4);
    protos[0].announce_on_start = true;
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.1))
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(1.0);
    let stats = engine.message_stats();
    assert_eq!(stats.send_events, 1);
    assert_eq!(stats.transmissions, 3);
    assert_eq!(stats.deliveries, 3);
    assert_eq!(stats.per_node_sends[0], 1);
    assert_eq!(stats.per_node_sends[1], 0);
}

#[test]
fn engine_clone_supports_extended_executions() {
    // Snapshot mid-run, continue both copies differently, and verify they
    // diverge from a common prefix.
    let g = topology::path(3);
    let mut protos = recorders(3);
    protos[0].announce_on_start = true;
    protos[1].announce_on_start = true;
    protos[2].announce_on_start = true;
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(UniformDelay::new(0.3, 17))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(0.15);
    let snapshot = engine.clone();
    assert_eq!(engine.now(), snapshot.now());

    let mut fast = snapshot.clone();
    fast.set_hardware_rate(NodeId(2), 1.5);
    engine.run_until(2.0);
    fast.run_until(2.0);
    let slow_h = engine.hardware_value(NodeId(2));
    let fast_h = fast.hardware_value(NodeId(2));
    assert!(fast_h > slow_h + 0.5);
    // Node 0 is untouched: identical in both continuations.
    assert_eq!(
        engine.hardware_value(NodeId(0)),
        fast.hardware_value(NodeId(0))
    );
}

#[test]
fn determinism_same_seed_same_history() {
    let run = || {
        let g = topology::erdos_renyi(8, 0.3, 5);
        let mut protos = recorders(8);
        for p in &mut protos {
            p.announce_on_start = true;
        }
        let mut engine = Engine::builder(g)
            .protocols(protos)
            .delay_model(UniformDelay::new(0.4, 99))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(3.0);
        (
            engine.message_stats().clone(),
            (0..8)
                .map(|v| engine.protocol(NodeId(v)).messages.clone())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn run_until_observed_sees_every_event_and_horizon() {
    let g = topology::path(2);
    let mut protos = recorders(2);
    protos[0].announce_on_start = true;
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.25))
        .build();
    engine.wake_all_at(0.0);
    let mut observations = Vec::new();
    engine.run_until_observed(1.0, |e| observations.push(e.now()));
    // wake(0), wake(1), delivery at 0.25 (node 1 announced too -> delivery to 0), horizon.
    assert!(observations.len() >= 4);
    assert_eq!(*observations.last().unwrap(), 1.0);
    assert!(observations.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
#[should_panic(expected = "non-neighbour")]
fn sending_to_non_neighbour_panics() {
    #[derive(Debug, Clone)]
    struct Bad;
    impl Protocol for Bad {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.send(NodeId(2), ()); // not adjacent on a path of 3
        }
        fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, _: &mut Context<'_, ()>, _: TimerId) {}
        fn logical_value(&self, hw: f64) -> f64 {
            hw
        }
    }
    let g = topology::path(3);
    let mut engine = Engine::builder(g)
        .protocols(vec![Bad, Bad, Bad])
        .delay_model(ConstantDelay::new(0.0))
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(1.0);
}

#[test]
fn zero_delay_messages_process_in_send_order() {
    let g = topology::path(2);
    let mut protos = recorders(2);
    protos[0].announce_on_start = true;
    protos[1].announce_on_start = true;
    let mut engine = Engine::builder(g)
        .protocols(protos)
        .delay_model(ConstantDelay::new(0.0))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(0.0);
    // Both woke and exchanged messages at t = 0 without livelock.
    assert_eq!(engine.protocol(NodeId(0)).messages.len(), 1);
    assert_eq!(engine.protocol(NodeId(1)).messages.len(), 1);
}

#[test]
fn cancel_timer_prevents_fire() {
    #[derive(Debug, Clone, Default)]
    struct CancelSelf {
        fired: bool,
    }
    impl Protocol for CancelSelf {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.set_timer(TimerId(0), 1.0);
            ctx.cancel_timer(TimerId(0));
        }
        fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, _: &mut Context<'_, ()>, _: TimerId) {
            self.fired = true;
        }
        fn logical_value(&self, hw: f64) -> f64 {
            hw
        }
    }
    let g = topology::path(1);
    let mut engine = Engine::builder(g)
        .protocols(vec![CancelSelf::default()])
        .delay_model(ConstantDelay::new(0.0))
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(5.0);
    assert!(!engine.protocol(NodeId(0)).fired);
}

#[test]
fn rearming_timer_replaces_previous_target() {
    #[derive(Debug, Clone, Default)]
    struct Rearm {
        fires: Vec<f64>,
    }
    impl Protocol for Rearm {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.set_timer(TimerId(0), 1.0);
            ctx.set_timer(TimerId(0), 2.0); // replaces the 1.0 target
        }
        fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _: TimerId) {
            self.fires.push(ctx.hw());
        }
        fn logical_value(&self, hw: f64) -> f64 {
            hw
        }
    }
    let g = topology::path(1);
    let mut engine = Engine::builder(g)
        .protocols(vec![Rearm::default()])
        .delay_model(ConstantDelay::new(0.0))
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(5.0);
    let fires = &engine.protocol(NodeId(0)).fires;
    assert_eq!(fires.len(), 1);
    assert!((fires[0] - 2.0).abs() < 1e-12);
}

#[test]
fn past_timer_target_fires_immediately() {
    #[derive(Debug, Clone, Default)]
    struct Immediate {
        fires: Vec<f64>,
    }
    impl Protocol for Immediate {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.set_timer(TimerId(0), -5.0);
        }
        fn on_message(&mut self, _: &mut Context<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _: TimerId) {
            self.fires.push(ctx.hw());
        }
        fn logical_value(&self, hw: f64) -> f64 {
            hw
        }
    }
    let g = topology::path(1);
    let mut engine = Engine::builder(g)
        .protocols(vec![Immediate::default()])
        .delay_model(ConstantDelay::new(0.0))
        .build();
    engine.wake(NodeId(0), 3.0);
    engine.run_until(3.0);
    let fires = &engine.protocol(NodeId(0)).fires;
    assert_eq!(fires.len(), 1);
    assert_eq!(fires[0], 0.0);
}
