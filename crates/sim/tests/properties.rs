//! Property-based tests of the engine's core invariants under randomized
//! environments.

use gcs_core::{AOpt, MaxAlgorithm, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{rates, Engine, UniformDelay};
use gcs_time::DriftBounds;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hardware_clocks_track_their_schedules(
        n in 2usize..8,
        eps in 0.01f64..0.2,
        rate_seed in 0u64..200,
        horizon in 5.0f64..40.0,
    ) {
        let drift = DriftBounds::new(eps).unwrap();
        let schedules = rates::random_walk(n, drift, 1.5, horizon, rate_seed);
        let g = topology::path(n);
        let mut engine = Engine::builder(g)
            .protocols(vec![gcs_core::NoSync; n])
            .delay_model(UniformDelay::new(0.1, 1))
            .rate_schedules(schedules.clone())
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(horizon);
        for (v, schedule) in schedules.iter().enumerate() {
            let expected = schedule.integrate(0.0, horizon);
            let actual = engine.hardware_value(NodeId(v));
            prop_assert!((actual - expected).abs() < 1e-6,
                "node {v}: H = {actual}, schedule integral = {expected}");
        }
    }

    #[test]
    fn logical_clocks_never_run_backwards(
        n in 2usize..7,
        eps in 0.01f64..0.1,
        seeds in (0u64..100, 0u64..100),
    ) {
        let drift = DriftBounds::new(eps).unwrap();
        let params = Params::recommended(eps, 0.2).unwrap();
        let schedules = rates::random_walk(n, drift, 2.0, 30.0, seeds.0);
        let g = topology::cycle(n.max(3));
        let nn = g.len();
        let mut schedules = schedules;
        schedules.resize(nn, gcs_time::RateSchedule::default());
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); nn])
            .delay_model(UniformDelay::new(0.2, seeds.1))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut last = vec![0.0f64; nn];
        let mut ok = true;
        engine.run_until_observed(30.0, |e| {
            for (v, prev) in last.iter_mut().enumerate() {
                let l = e.logical_value(NodeId(v));
                if l < *prev - 1e-12 {
                    ok = false;
                }
                *prev = l;
            }
        });
        prop_assert!(ok, "a logical clock ran backwards");
    }

    #[test]
    fn message_accounting_is_consistent(
        n in 2usize..8,
        p_edge in 0.1f64..0.5,
        seeds in (0u64..100, 0u64..100),
    ) {
        let g = topology::erdos_renyi(n, p_edge, seeds.0);
        let nn = g.len();
        let mut engine = Engine::builder(g)
            .protocols(vec![MaxAlgorithm::new(0.7); nn])
            .delay_model(UniformDelay::new(0.2, seeds.1))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(20.0);
        let stats = engine.message_stats();
        // Every broadcast fans out to ≥ 1 neighbour; deliveries can lag
        // transmissions only by what is still in flight at the horizon.
        prop_assert!(stats.transmissions >= stats.send_events);
        prop_assert!(stats.deliveries <= stats.transmissions);
        prop_assert_eq!(stats.dropped, 0);
        let per_node_total: u64 = stats.per_node_sends.iter().sum();
        prop_assert_eq!(per_node_total, stats.send_events);
    }

    #[test]
    fn snapshot_and_original_evolve_identically(
        n in 2usize..7,
        seeds in (0u64..100, 0u64..100),
        split_at in 2.0f64..10.0,
    ) {
        let eps = 0.05;
        let drift = DriftBounds::new(eps).unwrap();
        let params = Params::recommended(eps, 0.2).unwrap();
        let g = topology::path(n);
        let schedules = rates::random_walk(n, drift, 2.0, 30.0, seeds.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); n])
            .delay_model(UniformDelay::new(0.2, seeds.1))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(split_at);
        let mut copy = engine.clone();
        engine.run_until(25.0);
        copy.run_until(25.0);
        for v in 0..n {
            prop_assert_eq!(engine.logical_value(NodeId(v)), copy.logical_value(NodeId(v)));
            prop_assert_eq!(engine.hardware_value(NodeId(v)), copy.hardware_value(NodeId(v)));
        }
        prop_assert_eq!(engine.message_stats(), copy.message_stats());
    }
}
