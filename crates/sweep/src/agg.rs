//! Streaming aggregation of job results.
//!
//! The aggregator ingests outcomes **in job-index order** (the pool's emit
//! order), so every derived statistic — including order-sensitive floating
//! point sums — is a pure function of the sweep spec, independent of worker
//! count. Quantiles are computed on demand from the retained samples by the
//! nearest-rank rule.

use gcs_analysis::Table;

use crate::job::JobResult;
use crate::pool::JobOutcome;

/// Order-stable summary statistics over one measured quantity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stat {
    values: Vec<f64>,
    sum: f64,
}

impl Stat {
    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Mean of the samples (ingestion order), or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.values.is_empty()).then(|| self.sum / self.values.len() as f64)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Nearest-rank quantile `q ∈ [0, 1]`, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Rolled-up view of a whole sweep: counts, failures, and summary
/// statistics per measured quantity.
#[derive(Debug, Clone, Default)]
pub struct SweepAggregate {
    /// Jobs ingested so far.
    pub total: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that failed (error or panic).
    pub failed: usize,
    /// `(job index, message)` for every failed job, in job order.
    pub failures: Vec<(usize, String)>,
    /// Completed jobs whose invariant watchdog tripped.
    pub watchdog_trips: usize,
    /// Worst global skew per job.
    pub global_skew: Stat,
    /// Worst local skew per job.
    pub local_skew: Stat,
    /// Send events per job.
    pub send_events: Stat,
    /// Deliveries per job.
    pub deliveries: Stat,
    /// Drops per job.
    pub dropped: Stat,
    /// Recorded engine events per job.
    pub events: Stat,
}

impl SweepAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        SweepAggregate::default()
    }

    /// Folds one job outcome in. Must be called in job-index order for
    /// deterministic output — the pool's emit callback guarantees that.
    pub fn ingest(&mut self, index: usize, outcome: &JobOutcome<JobResult>) {
        self.total += 1;
        match outcome {
            JobOutcome::Completed(r) => {
                self.completed += 1;
                if r.watchdog_tripped {
                    self.watchdog_trips += 1;
                }
                self.global_skew.record(r.global_skew);
                self.local_skew.record(r.local_skew);
                self.send_events.record(r.send_events as f64);
                self.deliveries.record(r.deliveries as f64);
                self.dropped.record(r.dropped as f64);
                self.events.record(r.events_recorded as f64);
            }
            JobOutcome::Failed(message) => {
                self.failed += 1;
                self.failures.push((index, message.clone()));
            }
        }
    }

    /// Renders the summary statistics as the run table.
    pub fn render_table(&self) -> Table {
        let mut table = Table::new(vec![
            "metric", "count", "mean", "min", "p50", "p95", "p99", "max",
        ]);
        let mut push = |name: &str, stat: &Stat| {
            let f = |v: Option<f64>| v.map_or_else(|| "-".into(), |v| format!("{v:.6}"));
            table.row(vec![
                name.to_string(),
                stat.count().to_string(),
                f(stat.mean()),
                f(stat.min()),
                f(stat.quantile(0.50)),
                f(stat.quantile(0.95)),
                f(stat.quantile(0.99)),
                f(stat.max()),
            ]);
        };
        push("global skew", &self.global_skew);
        push("local skew", &self.local_skew);
        push("send events", &self.send_events);
        push("deliveries", &self.deliveries);
        push("dropped", &self.dropped);
        push("engine events", &self.events);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_use_nearest_rank() {
        let mut s = Stat::default();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(5.0));
        assert_eq!(s.quantile(0.5), Some(3.0));
        assert_eq!(s.quantile(0.95), Some(5.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(Stat::default().quantile(0.5), None);
    }

    #[test]
    fn aggregate_counts_failures_and_trips() {
        let mut agg = SweepAggregate::new();
        let ok = JobResult {
            nodes: 4,
            diameter: 3,
            horizon: 10.0,
            global_skew: 1.0,
            local_skew: 0.5,
            global_bound: 2.0,
            local_bound: 1.0,
            send_events: 10,
            transmissions: 20,
            deliveries: 20,
            dropped: 0,
            dropped_model: 0,
            dropped_faults: 0,
            duplicated: 0,
            events_recorded: 50,
            watchdog_tripped: true,
        };
        agg.ingest(0, &JobOutcome::Completed(ok));
        agg.ingest(1, &JobOutcome::Failed("panicked: boom".into()));
        assert_eq!((agg.total, agg.completed, agg.failed), (2, 1, 1));
        assert_eq!(agg.watchdog_trips, 1);
        assert_eq!(agg.failures, vec![(1, "panicked: boom".into())]);
        assert_eq!(agg.global_skew.count(), 1);
    }
}
