//! Deduplicating identical grid points inside one sweep.
//!
//! Duplicate axis values (`eps = 0.01,0.01`, overlapping topology lists,
//! a repeated chaos clause) expand to jobs that are identical in every
//! result-bearing field. A job's result is a pure function of its spec
//! (see [`crate::run_job`]), so recomputing such duplicates is pure waste.
//! [`DedupePlan`] groups jobs by their [canonical hash](crate::hash) —
//! with a full byte-equality guard against hash collisions — and
//! [`run_sweep_deduped`] runs one execution per distinct spec while
//! emitting results for **every** original job, in original index order,
//! byte-identical to the undeduped sweep.

use std::collections::HashMap;

use crate::agg::SweepAggregate;
use crate::job::{run_job, JobResult};
use crate::pool::{run_pool_timed, JobOutcome, PoolProgress, PoolStats};
use crate::spec::JobSpec;

/// The dedupe mapping for one expanded job list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupePlan {
    /// Original indices of the representative (first) occurrence of each
    /// distinct spec, in increasing order.
    unique: Vec<usize>,
    /// For every original job index, the position in [`Self::unique`] of
    /// its representative.
    rep: Vec<usize>,
}

impl DedupePlan {
    /// Groups `jobs` by canonical hash. Hash collisions are disambiguated
    /// by comparing the full canonical byte strings, so the plan is exact
    /// even if two distinct specs ever collide on the 64-bit digest.
    pub fn new(jobs: &[JobSpec]) -> Self {
        let mut unique: Vec<usize> = Vec::new();
        let mut rep: Vec<usize> = Vec::with_capacity(jobs.len());
        // hash → positions in `unique` sharing it (usually exactly one).
        let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
        let mut canon: Vec<Vec<u8>> = Vec::new();
        for job in jobs {
            let bytes = job.canonical_bytes();
            let hash = crate::hash::digest(&bytes);
            let bucket = by_hash.entry(hash).or_default();
            match bucket.iter().find(|&&u| canon[u] == bytes) {
                Some(&u) => rep.push(u),
                None => {
                    let u = unique.len();
                    unique.push(job.index);
                    canon.push(bytes);
                    bucket.push(u);
                    rep.push(u);
                }
            }
        }
        DedupePlan { unique, rep }
    }

    /// Original job indices of the representatives, in increasing order.
    pub fn unique(&self) -> &[usize] {
        &self.unique
    }

    /// The representative (position in [`Self::unique`]) of original job
    /// `index`.
    pub fn rep_of(&self, index: usize) -> usize {
        self.rep[index]
    }

    /// Number of jobs that reuse another job's execution.
    pub fn duplicates(&self) -> usize {
        self.rep.len() - self.unique.len()
    }
}

/// Like [`crate::run_sweep_timed`], but each distinct spec is executed
/// once and its outcome is replayed for every duplicate.
///
/// The emit callback still fires exactly once per **original** job, in
/// strictly increasing original index order, with outcomes identical to
/// the undeduped sweep — so CSV/JSONL streams and the aggregate are
/// byte-for-byte unchanged. Only `progress` differs: it reports executed
/// (distinct) jobs, since those are what take wall time.
///
/// Returns the per-original-job outcomes, the aggregate, the pool stats
/// (sized by distinct jobs), and the number of deduplicated jobs.
pub fn run_sweep_deduped(
    jobs: &[JobSpec],
    workers: usize,
    mut emit: impl FnMut(&JobSpec, &JobOutcome<JobResult>) + Send,
    progress: Option<impl FnMut(PoolProgress) + Send>,
) -> (Vec<JobOutcome<JobResult>>, SweepAggregate, PoolStats, usize) {
    let plan = DedupePlan::new(jobs);
    let mut aggregate = SweepAggregate::new();
    // Emission state, mutated under the pool's result lock: outcomes of
    // already-emitted distinct jobs, and the original-order watermark.
    let mut unique_done: Vec<Option<JobOutcome<JobResult>>> = vec![None; plan.unique.len()];
    let mut orig_watermark = 0usize;
    let (_, stats) = run_pool_timed(
        plan.unique.len(),
        workers,
        |u| run_job(&jobs[plan.unique[u]]),
        |u, outcome| {
            unique_done[u] = Some(outcome.clone());
            // Distinct jobs are emitted in increasing `u`; an original job
            // is ready as soon as its representative is. Representatives
            // appear in original order, so the original watermark advances
            // precisely to the next not-yet-executed representative.
            while orig_watermark < jobs.len() && plan.rep[orig_watermark] <= u {
                let ready = unique_done[plan.rep[orig_watermark]]
                    .as_ref()
                    .expect("representative emitted before its duplicates");
                aggregate.ingest(orig_watermark, ready);
                emit(&jobs[orig_watermark], ready);
                orig_watermark += 1;
            }
        },
        progress,
    );
    debug_assert_eq!(orig_watermark, jobs.len(), "every original job emitted");
    let outcomes = plan
        .rep
        .iter()
        .map(|&u| unique_done[u].clone().expect("all distinct jobs completed"))
        .collect();
    (outcomes, aggregate, stats, plan.duplicates())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sweep_timed;
    use crate::spec::SweepSpec;

    fn duplicated_grid() -> Vec<JobSpec> {
        SweepSpec {
            topologies: vec!["path:4".into(), "ring:4".into(), "path:4".into()],
            eps: vec![0.01, 0.01],
            seeds: 0..2,
            horizon: 10.0,
            ..SweepSpec::default()
        }
        .expand()
    }

    #[test]
    fn plan_groups_identical_specs() {
        let jobs = duplicated_grid();
        assert_eq!(jobs.len(), 12);
        let plan = DedupePlan::new(&jobs);
        // 2 distinct topologies × 1 distinct eps × 2 seeds = 4 executions.
        assert_eq!(plan.unique().len(), 4);
        assert_eq!(plan.duplicates(), 8);
        for (i, job) in jobs.iter().enumerate() {
            let rep = &jobs[plan.unique()[plan.rep_of(i)]];
            assert_eq!(rep.canonical_bytes(), job.canonical_bytes());
            assert!(rep.index <= job.index, "representative is first occurrence");
        }
        // A duplicate-free grid plans the identity.
        let clean = SweepSpec::default().expand();
        let plan = DedupePlan::new(&clean);
        assert_eq!(plan.duplicates(), 0);
        assert_eq!(plan.unique(), &[0]);
    }

    #[test]
    fn deduped_sweep_is_byte_identical_to_plain_sweep() {
        let jobs = duplicated_grid();
        let mut plain_rows = Vec::new();
        let (plain_outcomes, plain_agg, _) = run_sweep_timed(
            &jobs,
            2,
            |job, outcome| plain_rows.push(crate::report::csv_row(job, outcome)),
            None::<fn(PoolProgress)>,
        );
        for workers in [1, 3] {
            let mut rows = Vec::new();
            let (outcomes, agg, stats, deduped) = run_sweep_deduped(
                &jobs,
                workers,
                |job, outcome| rows.push(crate::report::csv_row(job, outcome)),
                None::<fn(PoolProgress)>,
            );
            assert_eq!(rows, plain_rows, "workers={workers}");
            assert_eq!(outcomes, plain_outcomes);
            assert_eq!(
                agg.render_table().to_string(),
                plain_agg.render_table().to_string()
            );
            assert_eq!(deduped, 8);
            assert_eq!(stats.job_wall.len(), 4, "only distinct jobs executed");
        }
    }

    #[test]
    fn failures_replay_to_duplicates_too() {
        let jobs = SweepSpec {
            topologies: vec!["moebius:4".into(), "moebius:4".into()],
            horizon: 1.0,
            ..SweepSpec::default()
        }
        .expand();
        let (outcomes, agg, _, deduped) =
            run_sweep_deduped(&jobs, 2, |_, _| {}, None::<fn(PoolProgress)>);
        assert_eq!(deduped, 1);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0], outcomes[1]);
        assert!(outcomes[0].failure().is_some());
        assert_eq!(agg.failed, 2, "aggregate counts original jobs");
    }
}
