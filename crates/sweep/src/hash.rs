//! Canonical spec serialization and the SplitMix64 content digest.
//!
//! A [`JobSpec`]'s *identity* — everything that determines its result —
//! is serialized into a canonical byte string and folded into a 64-bit
//! digest. Two specs hash equal exactly when they describe the same
//! execution (the job `index` is deliberately excluded: it names a grid
//! position, not a computation). The digest is the key for both layers of
//! result reuse:
//!
//! * `gcs sweep` dedupes identical expanded grid points (duplicate axis
//!   values) so each distinct execution runs once (see [`crate::dedupe`]);
//! * `gcs serve` keys its result cache by the digest, so a repeated spec
//!   is answered from the cache without touching the engine.
//!
//! The encoding is versioned (`gcs-spec/v1` prefix) and fully explicit:
//! field tags, length-prefixed strings, `f64::to_bits` for floats — no
//! textual round-trips, so `0.1` and `1e-1` hash equal while `-0.0` and
//! `0.0` do not (they are different bit patterns and different specs).

use crate::spec::{JobSpec, SweepSpec};

/// Version prefix folded into every canonical byte string.
const VERSION_TAG: &[u8] = b"gcs-spec/v1";

/// SplitMix64's odd constant; also used as the digest seed so an empty
/// input does not hash to zero.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// One SplitMix64 scramble round: a full-avalanche bijection on `u64`.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds a byte string into a 64-bit digest by absorbing 8-byte
/// little-endian words through SplitMix64 rounds, with the length mixed
/// into the final round (so `"a" + "bc"` and `"ab" + "c"` cannot collide
/// by concatenation alone — callers still frame fields explicitly).
pub fn digest(bytes: &[u8]) -> u64 {
    let mut h = GOLDEN_GAMMA;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        h = splitmix64(h ^ word);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        h = splitmix64(h ^ u64::from_le_bytes(tail));
    }
    splitmix64(h ^ bytes.len() as u64)
}

/// Renders a digest as the fixed-width hex form used in job ids and
/// output streams.
pub fn hex16(hash: u64) -> String {
    format!("{hash:016x}")
}

/// The canonical-bytes builder: every field is written as a one-byte tag
/// followed by a self-delimiting payload, so field order and boundaries
/// are unambiguous.
#[derive(Debug, Default)]
struct Canon {
    bytes: Vec<u8>,
}

impl Canon {
    fn new() -> Self {
        let mut c = Canon::default();
        c.bytes.extend_from_slice(VERSION_TAG);
        c
    }

    fn str(&mut self, tag: u8, value: &str) {
        self.bytes.push(tag);
        self.bytes
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.bytes.extend_from_slice(value.as_bytes());
    }

    fn f64(&mut self, tag: u8, value: f64) {
        self.bytes.push(tag);
        self.bytes.extend_from_slice(&value.to_bits().to_le_bytes());
    }

    fn u64(&mut self, tag: u8, value: u64) {
        self.bytes.push(tag);
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    fn opt_u32(&mut self, tag: u8, value: Option<u32>) {
        self.bytes.push(tag);
        match value {
            None => self.bytes.push(0),
            Some(v) => {
                self.bytes.push(1);
                self.bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    fn bool(&mut self, tag: u8, value: bool) {
        self.bytes.push(tag);
        self.bytes.push(value as u8);
    }

    fn list(&mut self, tag: u8, values: &[String]) {
        self.bytes.push(tag);
        self.bytes
            .extend_from_slice(&(values.len() as u32).to_le_bytes());
        for v in values {
            self.bytes
                .extend_from_slice(&(v.len() as u32).to_le_bytes());
            self.bytes.extend_from_slice(v.as_bytes());
        }
    }
}

// Field tags. Job and sweep fields share a namespace; the leading kind
// byte (`b'J'` / `b'S'`) keeps a job and a sweep from ever colliding.
const TAG_KIND: u8 = 0x01;
const TAG_TOPOLOGY: u8 = 0x02;
const TAG_ALGO: u8 = 0x03;
const TAG_EPS: u8 = 0x04;
const TAG_T: u8 = 0x05;
const TAG_SIGMA: u8 = 0x06;
const TAG_DELAY: u8 = 0x07;
const TAG_RATES: u8 = 0x08;
const TAG_CHAOS: u8 = 0x09;
const TAG_SEED: u8 = 0x0a;
const TAG_HORIZON: u8 = 0x0b;
const TAG_HORIZON_PER_D: u8 = 0x0c;
const TAG_WATCHDOG: u8 = 0x0d;
const TAG_SEEDS: u8 = 0x0e;

impl JobSpec {
    /// The canonical byte serialization of everything that determines this
    /// job's result. The job `index` is excluded: it is a position in the
    /// expansion order, not part of the computation.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut c = Canon::new();
        c.bytes.push(TAG_KIND);
        c.bytes.push(b'J');
        c.str(TAG_TOPOLOGY, &self.topology);
        c.str(TAG_ALGO, &self.algo);
        c.f64(TAG_EPS, self.eps);
        c.f64(TAG_T, self.t);
        c.opt_u32(TAG_SIGMA, self.sigma);
        c.str(TAG_DELAY, &self.delay);
        c.str(TAG_RATES, &self.rates);
        c.str(TAG_CHAOS, &self.chaos);
        c.u64(TAG_SEED, self.seed);
        c.f64(TAG_HORIZON, self.horizon);
        c.f64(TAG_HORIZON_PER_D, self.horizon_per_diameter);
        c.bool(TAG_WATCHDOG, self.watchdog);
        c.bytes
    }

    /// The SplitMix64 digest of [`JobSpec::canonical_bytes`] — the job's
    /// content identity for dedupe and result caching.
    pub fn canonical_hash(&self) -> u64 {
        digest(&self.canonical_bytes())
    }
}

impl SweepSpec {
    /// The canonical byte serialization of the whole grid (axis lists in
    /// declaration order, seed range as its endpoints).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut c = Canon::new();
        c.bytes.push(TAG_KIND);
        c.bytes.push(b'S');
        c.list(TAG_TOPOLOGY, &self.topologies);
        c.list(TAG_ALGO, &self.algos);
        c.bytes.push(TAG_EPS);
        c.bytes
            .extend_from_slice(&(self.eps.len() as u32).to_le_bytes());
        for &v in &self.eps {
            c.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        c.bytes.push(TAG_T);
        c.bytes
            .extend_from_slice(&(self.t.len() as u32).to_le_bytes());
        for &v in &self.t {
            c.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        c.bytes.push(TAG_SIGMA);
        c.bytes
            .extend_from_slice(&(self.sigmas.len() as u32).to_le_bytes());
        for &v in &self.sigmas {
            match v {
                None => c.bytes.push(0),
                Some(v) => {
                    c.bytes.push(1);
                    c.bytes.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        c.list(TAG_DELAY, &self.delays);
        c.list(TAG_RATES, &self.rates);
        c.list(TAG_CHAOS, &self.chaos);
        c.u64(TAG_SEEDS, self.seeds.start);
        c.u64(TAG_SEEDS, self.seeds.end);
        c.f64(TAG_HORIZON, self.horizon);
        c.f64(TAG_HORIZON_PER_D, self.horizon_per_diameter);
        c.bool(TAG_WATCHDOG, self.watchdog);
        c.bytes
    }

    /// The SplitMix64 digest of [`SweepSpec::canonical_bytes`].
    pub fn canonical_hash(&self) -> u64 {
        digest(&self.canonical_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobSpec {
        SweepSpec::default().expand().remove(0)
    }

    #[test]
    fn index_does_not_change_job_identity() {
        let a = job();
        let mut b = a.clone();
        b.index = 917;
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn every_result_bearing_field_changes_the_hash() {
        let base = job();
        let h = base.canonical_hash();
        let mutations: Vec<JobSpec> = vec![
            JobSpec {
                topology: "ring:16".into(),
                ..base.clone()
            },
            JobSpec {
                algo: "jump".into(),
                ..base.clone()
            },
            JobSpec {
                eps: 2e-2,
                ..base.clone()
            },
            JobSpec {
                t: 0.2,
                ..base.clone()
            },
            JobSpec {
                sigma: Some(2),
                ..base.clone()
            },
            JobSpec {
                delay: "const".into(),
                ..base.clone()
            },
            JobSpec {
                rates: "nominal".into(),
                ..base.clone()
            },
            JobSpec {
                chaos: "drop:1..2:*:0.5".into(),
                ..base.clone()
            },
            JobSpec {
                seed: 1,
                ..base.clone()
            },
            JobSpec {
                horizon: 61.0,
                ..base.clone()
            },
            JobSpec {
                horizon_per_diameter: 1.0,
                ..base.clone()
            },
            JobSpec {
                watchdog: true,
                ..base.clone()
            },
        ];
        let mut seen = vec![h];
        for m in &mutations {
            let mh = m.canonical_hash();
            assert!(
                !seen.contains(&mh),
                "mutation {m:?} collided with a previous hash"
            );
            seen.push(mh);
        }
    }

    #[test]
    fn numeric_values_hash_by_bits_not_text() {
        let a = JobSpec { eps: 0.1, ..job() };
        let b = JobSpec { eps: 1e-1, ..job() };
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        let c = JobSpec {
            eps: 0.1 + f64::EPSILON,
            ..job()
        };
        assert_ne!(a.canonical_hash(), c.canonical_hash());
    }

    #[test]
    fn sweep_and_job_kinds_never_collide_and_digest_is_stable() {
        let sweep = SweepSpec::default();
        assert_ne!(sweep.canonical_hash(), job().canonical_hash());
        // The digest is a committed format: the serve cache and the job ids
        // in its API are keyed by these exact values across processes.
        assert_eq!(digest(b""), digest(b""));
        assert_ne!(digest(b"a"), digest(b"b"));
        assert_ne!(digest(b"ab"), digest(b"a\0"));
        assert_eq!(hex16(0xdead_beef).len(), 16);
    }

    #[test]
    fn list_boundaries_are_framed() {
        // ["ab"] vs ["a", "b"]: same concatenated text, different grids.
        let a = SweepSpec {
            topologies: vec!["path:4".into()],
            algos: vec!["ab".into()],
            ..SweepSpec::default()
        };
        let b = SweepSpec {
            topologies: vec!["path:4".into()],
            algos: vec!["a".into(), "b".into()],
            ..SweepSpec::default()
        };
        assert_ne!(a.canonical_hash(), b.canonical_hash());
    }
}
