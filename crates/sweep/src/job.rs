//! Executing one sweep job: a fresh engine, a fresh observability stack,
//! one measured execution.

use gcs_adversary::{apply_rate_faults, ChaosDelay};
use gcs_analysis::{InvariantWatchdog, MetricsSink, SkewObserver};
use gcs_core::{
    AOpt, AOptJump, EnvelopeAOpt, MaxAlgorithm, MidpointAlgorithm, MinGapAOpt, NoSync, Params,
};
use gcs_graph::Graph;
use gcs_sim::{Engine, EngineEvent, EventSink, MessageStats, Protocol, RecorderSink};
use gcs_time::{DriftBounds, RateSchedule};

use crate::parse::{build_delay, build_rates, parse_topology, resolve_chaos, SweepDelay};
use crate::spec::JobSpec;

/// Measurements from one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Number of nodes of the instantiated topology.
    pub nodes: usize,
    /// Diameter of the instantiated topology.
    pub diameter: u32,
    /// Effective real-time horizon the execution ran to.
    pub horizon: f64,
    /// Worst pairwise logical skew over the execution.
    pub global_skew: f64,
    /// Worst neighbour logical skew over the execution.
    pub local_skew: f64,
    /// `A^opt`'s Theorem 5.5 bound 𝒢 for this job's parameters and diameter.
    pub global_bound: f64,
    /// `A^opt`'s Theorem 5.10 bound for this job's parameters and diameter.
    pub local_bound: f64,
    /// Broadcast send events.
    pub send_events: u64,
    /// Per-edge message transmissions.
    pub transmissions: u64,
    /// Delivered messages.
    pub deliveries: u64,
    /// Messages dropped in total (`dropped_model + dropped_faults`).
    pub dropped: u64,
    /// Drops attributed to the delay model itself (`lossy`-style loss).
    pub dropped_model: u64,
    /// Drops attributed to injected chaos faults.
    pub dropped_faults: u64,
    /// Fault-injected duplicate transmissions.
    pub duplicated: u64,
    /// Engine events recorded by the per-job metrics sink.
    pub events_recorded: u64,
    /// Whether the invariant watchdog tripped (always `false` when the
    /// sweep runs without `watchdog`).
    pub watchdog_tripped: bool,
}

/// The per-job observability stack: exact skew observation, the PR-1
/// metrics registry, and (optionally) the PR-1 invariant watchdog — all
/// freshly constructed per job so jobs share no state.
struct JobSinks {
    observer: SkewObserver,
    metrics: MetricsSink,
    watchdog: Option<InvariantWatchdog>,
    /// The always-armed flight recorder: bounded memory per job, so even
    /// wide sweeps keep a recent-event window for post-mortems.
    recorder: RecorderSink,
}

impl JobSinks {
    fn new(graph: &Graph, params: Params, drift: DriftBounds, watchdog: bool) -> Self {
        JobSinks {
            observer: SkewObserver::new(graph),
            metrics: MetricsSink::new(),
            watchdog: watchdog.then(|| InvariantWatchdog::new(graph, params, drift)),
            recorder: RecorderSink::new(),
        }
    }
}

impl EventSink for JobSinks {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: &EngineEvent) {
        self.recorder.record(event);
        self.metrics.record(event);
        if let Some(w) = self.watchdog.as_mut() {
            w.record(event);
        }
    }

    fn wants_snapshots(&self) -> bool {
        true
    }

    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        self.observer.observe_clocks(t, clocks);
        self.metrics.snapshot(t, clocks, queue_depth);
        if let Some(w) = self.watchdog.as_mut() {
            w.snapshot(t, clocks, queue_depth);
        }
    }
}

fn exec<P: Protocol>(
    graph: Graph,
    protocols: Vec<P>,
    delay: ChaosDelay<SweepDelay>,
    schedules: Vec<RateSchedule>,
    horizon: f64,
    sinks: JobSinks,
) -> Result<(JobSinks, MessageStats), (Box<JobSinks>, String)> {
    let mut engine = Engine::builder(graph)
        .protocols(protocols)
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(sinks)
        .build();
    engine.wake_all_at(0.0);
    // Deliberately the sequential loop, never `run_until_threaded`: the
    // sweep's parallelism budget (`--jobs`) is spent on independent jobs,
    // one per worker thread. Nesting the windowed parallel driver inside a
    // job would oversubscribe the machine to jobs x threads cores — use
    // `gcs run --threads` when one large simulation should own the cores.
    //
    // The unwind guard salvages the observability stack — most importantly
    // the flight recorder's event window — when protocol or engine code
    // panics mid-run, so hosted jobs (`gcs serve`) can dump the window.
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.run_until(horizon)));
    match run {
        Ok(()) => {
            let stats = engine.message_stats().clone();
            Ok((engine.into_sink(), stats))
        }
        Err(payload) => {
            let message = crate::pool::panic_message(payload.as_ref());
            Err((Box::new(engine.into_sink()), message))
        }
    }
}

/// Everything one execution produced: the measurement (or failure), the
/// watchdog/panic disposition, and the flight recorder holding the final
/// event window.
///
/// The recorder is returned still encoded; decode it with
/// [`gcs_sim::RecorderSink::window_events`] only when the window is
/// actually needed (a trip/panic dump, a blame query) — plain sweeps drop
/// it for free.
#[derive(Debug)]
pub struct JobExecution {
    /// The job's measurements, or the failure/panic message.
    pub outcome: Result<JobResult, String>,
    /// Whether the invariant watchdog tripped (always `false` without
    /// `watchdog = true`).
    pub tripped: bool,
    /// Whether the engine panicked mid-run (the panic was caught; the
    /// recorder window below still holds the events leading up to it).
    pub panicked: bool,
    /// The per-job flight recorder, with its bounded window intact.
    pub recorder: RecorderSink,
}

/// Runs one job to completion on a fresh engine and returns its
/// measurements.
///
/// Every randomized component (random topologies, the uniform delay model,
/// random-walk rate schedules) is seeded from `job.seed`, so a job's result
/// is a pure function of its [`JobSpec`] — the foundation of the sweep
/// determinism guarantee.
///
/// A panic inside the engine is caught and reported as `Err("panicked: …")`
/// — the same message the worker pool would have produced, so sweep output
/// is unchanged.
pub fn run_job(job: &JobSpec) -> Result<JobResult, String> {
    run_job_full(job).outcome
}

/// Like [`run_job`], additionally returning the watchdog/panic disposition
/// and the flight recorder so hosts can write post-mortem dumps and serve
/// blame queries. See [`JobExecution`].
pub fn run_job_full(job: &JobSpec) -> JobExecution {
    match run_job_inner(job) {
        Ok(execution) => execution,
        Err(message) => JobExecution {
            outcome: Err(message),
            tripped: false,
            panicked: false,
            recorder: RecorderSink::new(),
        },
    }
}

/// The fallible setup phase: errors here (bad topology, unknown algorithm)
/// happen before an engine exists, so there is no recorder to salvage.
fn run_job_inner(job: &JobSpec) -> Result<JobExecution, String> {
    let graph = parse_topology(&job.topology, job.seed)?;
    let n = graph.len();
    let d = graph.diameter();
    let drift = DriftBounds::new(job.eps).map_err(|e| e.to_string())?;
    let params = match job.sigma {
        Some(sigma) => Params::with_sigma(job.eps, job.t, sigma),
        None => Params::recommended(job.eps, job.t),
    }
    .map_err(|e| e.to_string())?;
    let base_horizon = job.horizon + job.horizon_per_diameter * d as f64 * job.t;
    let (delay, min_horizon) = build_delay(&job.delay, &graph, job.t, job.eps, job.seed)?;
    let horizon = base_horizon.max(min_horizon);
    let mut schedules = build_rates(&job.rates, &graph, drift, horizon, job.seed)?;
    // The chaos layer always wraps; an empty schedule is fully transparent,
    // so chaos-free jobs behave exactly as before.
    let clauses = resolve_chaos(&job.chaos)?;
    apply_rate_faults(&mut schedules, &clauses)?;
    let delay = ChaosDelay::new(delay, clauses, job.seed);
    let sinks = JobSinks::new(&graph, params, drift, job.watchdog);

    macro_rules! run {
        ($protocols:expr) => {
            exec(graph, $protocols, delay, schedules, horizon, sinks)
        };
    }
    let executed = match job.algo.as_str() {
        "aopt" => run!(vec![AOpt::new(params); n]),
        "jump" => run!(vec![AOptJump::new(params); n]),
        "mingap" => run!(vec![MinGapAOpt::new(params); n]),
        "envelope" => run!(vec![EnvelopeAOpt::new(params); n]),
        "max" => run!(vec![MaxAlgorithm::new(1.0); n]),
        "midpoint" => run!(vec![MidpointAlgorithm::new(params.h0(), params.mu()); n]),
        "nosync" => run!(vec![NoSync; n]),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let (sinks, outcome, panicked) = match executed {
        Ok((mut sinks, stats)) => {
            sinks.metrics.flush_rate_window(horizon);
            let result = JobResult {
                nodes: n,
                diameter: d,
                horizon,
                global_skew: sinks.observer.worst_global(),
                local_skew: sinks.observer.worst_local(),
                global_bound: params.global_skew_bound(d),
                local_bound: params.local_skew_bound(d),
                send_events: stats.send_events,
                transmissions: stats.transmissions,
                deliveries: stats.deliveries,
                dropped: stats.dropped,
                dropped_model: stats.dropped_model,
                dropped_faults: stats.dropped_faults,
                duplicated: stats.duplicated,
                events_recorded: sinks
                    .metrics
                    .registry()
                    .counter_value("events.total")
                    .unwrap_or(0),
                watchdog_tripped: sinks.watchdog.as_ref().is_some_and(|w| w.tripped()),
            };
            (sinks, Ok(result), false)
        }
        Err((sinks, message)) => (*sinks, Err(message), true),
    };
    let tripped = sinks.watchdog.as_ref().is_some_and(|w| w.tripped());
    Ok(JobExecution {
        outcome,
        tripped,
        panicked,
        recorder: sinks.recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    #[test]
    fn job_result_is_reproducible_and_respects_bounds() {
        let spec = SweepSpec {
            topologies: vec!["path:6".into()],
            horizon: 30.0,
            watchdog: true,
            ..SweepSpec::default()
        };
        let job = &spec.expand()[0];
        let a = run_job(job).unwrap();
        let b = run_job(job).unwrap();
        assert_eq!(a, b, "same JobSpec must reproduce identical results");
        assert_eq!(a.nodes, 6);
        assert_eq!(a.diameter, 5);
        assert!(a.global_skew <= a.global_bound + 1e-9);
        assert!(a.local_skew <= a.global_skew + 1e-12);
        assert!(a.send_events > 0 && a.deliveries > 0);
        assert!(a.events_recorded > 0);
        assert!(!a.watchdog_tripped);
    }

    #[test]
    fn chaos_drops_are_attributed_to_faults_not_the_model() {
        let spec = SweepSpec {
            topologies: vec!["path:6".into()],
            delays: vec!["const".into()],
            rates: vec!["nominal".into()],
            chaos: vec!["drop:5..15:*:0.5".into()],
            horizon: 30.0,
            ..SweepSpec::default()
        };
        let job = &spec.expand()[0];
        let a = run_job(job).unwrap();
        let b = run_job(job).unwrap();
        assert_eq!(a, b, "chaos jobs must stay deterministic");
        assert!(a.dropped_faults > 0, "the drop clause must fire");
        assert_eq!(a.dropped_model, 0, "no lossy model in play");
        assert_eq!(a.dropped, a.dropped_model + a.dropped_faults);

        // The same grid point without chaos loses nothing.
        let clean = SweepSpec {
            chaos: vec!["none".into()],
            ..spec.clone()
        };
        let c = run_job(&clean.expand()[0]).unwrap();
        assert_eq!(c.dropped, 0);
        assert_eq!(c.duplicated, 0);
    }

    #[test]
    fn chaos_duplicates_are_counted() {
        let spec = SweepSpec {
            topologies: vec!["path:4".into()],
            delays: vec!["const".into()],
            rates: vec!["nominal".into()],
            chaos: vec!["dup:0..20:*:1:0.05".into()],
            horizon: 25.0,
            ..SweepSpec::default()
        };
        let r = run_job(&spec.expand()[0]).unwrap();
        assert!(r.duplicated > 0);
        assert_eq!(r.dropped, 0);
        // Every duplicate is its own transmission and delivery.
        assert_eq!(r.deliveries, r.transmissions);
    }

    #[test]
    fn bad_job_specs_fail_cleanly() {
        let spec = SweepSpec {
            topologies: vec!["moebius:6".into()],
            ..SweepSpec::default()
        };
        assert!(run_job(&spec.expand()[0]).is_err());
        let spec = SweepSpec {
            algos: vec!["quantum".into()],
            ..SweepSpec::default()
        };
        assert!(run_job(&spec.expand()[0]).is_err());
    }
}
