//! `gcs-sweep` — parallel, deterministic experiment-sweep orchestration.
//!
//! Every quantitative claim of *Tight Bounds for Clock Synchronization* is
//! checked by sweeping parameters: topology families × `(ε̂, 𝒯̂, σ)` axes ×
//! seeds × adversary strategies. This crate turns such a grid into
//! independent jobs and runs them on a [`std::thread`] worker pool:
//!
//! * [`SweepSpec`] — the grid. Expanded by [`SweepSpec::expand`] into
//!   [`JobSpec`]s in a fixed nesting order; the job index is the job's
//!   identity in every output stream.
//! * [`run_job`] — one job on a **fresh engine** with a fresh per-job
//!   observability stack (exact [`gcs_analysis::SkewObserver`],
//!   [`gcs_analysis::MetricsSink`], optional
//!   [`gcs_analysis::InvariantWatchdog`]). A job's result is a pure
//!   function of its spec.
//! * [`run_pool`] — the shared work queue. Panics are caught per job
//!   ([`JobOutcome::Failed`]) and the pool keeps draining; completed
//!   results are emitted **in job-index order regardless of worker
//!   count**, streamed as the completed prefix grows.
//! * [`SweepAggregate`] / [`report`] — order-stable statistics
//!   (count/mean/min/max/p50/p95/p99) and deterministic CSV + JSONL rows:
//!   the same spec produces byte-identical output at any `--jobs` value.
//!
//! # Example
//!
//! ```
//! use gcs_sweep::{run_sweep, SweepSpec};
//!
//! let mut spec = SweepSpec::default();
//! spec.topologies = vec!["path:5".into(), "ring:6".into()];
//! spec.seeds = 0..2;
//! spec.horizon = 20.0;
//! let jobs = spec.expand();
//! let (outcomes, agg) = run_sweep(&jobs, 2, |_job, _outcome| {});
//! assert_eq!(outcomes.len(), 4);
//! assert_eq!(agg.completed, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod dedupe;
pub mod hash;
mod job;
pub mod parse;
mod pool;
pub mod report;
mod spec;

pub use agg::{Stat, SweepAggregate};
pub use dedupe::{run_sweep_deduped, DedupePlan};
pub use job::{run_job, run_job_full, JobExecution, JobResult};
pub use parse::{build_delay, build_rates, parse_topology, SweepDelay, ALGOS};
pub use pool::{run_pool, run_pool_timed, JobOutcome, PoolProgress, PoolStats};
pub use spec::{JobSpec, SweepSpec};

/// Runs the given jobs on `workers` threads and aggregates the results.
///
/// `emit` is invoked once per job in strictly increasing job-index order
/// (see [`run_pool`]) — the place to stream CSV/JSONL rows. The aggregate
/// ingests outcomes in the same order, so its statistics are independent
/// of `workers`.
pub fn run_sweep(
    jobs: &[JobSpec],
    workers: usize,
    emit: impl FnMut(&JobSpec, &JobOutcome<JobResult>) + Send,
) -> (Vec<JobOutcome<JobResult>>, SweepAggregate) {
    let (outcomes, aggregate, _) = run_sweep_timed(jobs, workers, emit, None::<fn(PoolProgress)>);
    (outcomes, aggregate)
}

/// Like [`run_sweep`], additionally returning the pool's wall-time
/// accounting ([`PoolStats`]) and optionally invoking `progress` after
/// each completed job (the hook behind `gcs sweep --progress`).
///
/// Timing is observational: outcomes, emit order, and the aggregate are
/// byte-identical to [`run_sweep`]'s (property-tested in
/// `tests/sweep_determinism.rs`).
pub fn run_sweep_timed(
    jobs: &[JobSpec],
    workers: usize,
    mut emit: impl FnMut(&JobSpec, &JobOutcome<JobResult>) + Send,
    progress: Option<impl FnMut(PoolProgress) + Send>,
) -> (Vec<JobOutcome<JobResult>>, SweepAggregate, PoolStats) {
    let mut aggregate = SweepAggregate::new();
    let (outcomes, stats) = run_pool_timed(
        jobs.len(),
        workers,
        |index| run_job(&jobs[index]),
        |index, outcome| {
            aggregate.ingest(index, outcome);
            emit(&jobs[index], outcome);
        },
        progress,
    );
    (outcomes, aggregate, stats)
}
