//! The `kind:arg` mini-language shared by the `gcs` CLI and sweep specs:
//! topology, rate-schedule, and delay-model constructors from strings.
//!
//! This module is the single source of truth for spec syntax; `gcs run`
//! and every [`crate::SweepSpec`] axis parse through it.

use gcs_adversary::WavefrontDelay;
use gcs_graph::{topology, Graph, NodeId};
use gcs_sim::{
    rates, ConstantDelay, DelayCtx, DelayModel, Delivery, DirectionalDelay, Lookahead, UniformDelay,
};
use gcs_time::{DriftBounds, RateSchedule};

/// Algorithm names the sweep job runner can instantiate.
pub const ALGOS: &[&str] = &[
    "aopt", "jump", "mingap", "envelope", "max", "midpoint", "nosync",
];

/// Checks `name` is a runnable algorithm.
pub fn known_algo(name: &str) -> Result<(), String> {
    if ALGOS.contains(&name) {
        Ok(())
    } else {
        Err(format!(
            "unknown algorithm `{name}` (expected one of {})",
            ALGOS.join("|")
        ))
    }
}

/// Builds a topology from a `kind:arg` spec.
///
/// `path:N | ring:N | star:N | tree:N | complete:N | hypercube:DIM |
/// grid:WxH | torus:WxH | er:N:P | geo:N:R`. Random families (`er`, `geo`)
/// consume `seed`.
pub fn parse_topology(spec: &str, seed: u64) -> Result<Graph, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let arg = parts.next();
    let arg2 = parts.next();
    fn need<'a>(a: Option<&'a str>, spec: &str) -> Result<&'a str, String> {
        a.ok_or_else(|| format!("topology `{spec}` needs a size"))
    }
    let int = |s: &str| {
        s.parse::<usize>()
            .map_err(|_| format!("bad size in topology `{spec}`"))
    };
    let dims = |s: &str| -> Result<(usize, usize), String> {
        let (w, h) = s
            .split_once('x')
            .ok_or_else(|| format!("topology `{spec}` needs WxH dimensions"))?;
        Ok((int(w)?, int(h)?))
    };
    match kind {
        "path" => Ok(topology::path(int(need(arg, spec)?)?)),
        "ring" => Ok(topology::cycle(int(need(arg, spec)?)?)),
        "star" => Ok(topology::star(int(need(arg, spec)?)?)),
        "tree" => Ok(topology::binary_tree(int(need(arg, spec)?)?)),
        "complete" => Ok(topology::complete(int(need(arg, spec)?)?)),
        "hypercube" => Ok(topology::hypercube(int(need(arg, spec)?)?)),
        "grid" => {
            let (w, h) = dims(need(arg, spec)?)?;
            Ok(topology::grid(w, h))
        }
        "torus" => {
            let (w, h) = dims(need(arg, spec)?)?;
            Ok(topology::torus(w, h))
        }
        "er" => {
            let n = int(need(arg, spec)?)?;
            let p: f64 = need(arg2, spec)?
                .parse()
                .map_err(|_| format!("bad probability in `{spec}`"))?;
            Ok(topology::erdos_renyi(n, p, seed))
        }
        "geo" => {
            let n = int(need(arg, spec)?)?;
            let r: f64 = need(arg2, spec)?
                .parse()
                .map_err(|_| format!("bad radius in `{spec}`"))?;
            Ok(topology::random_geometric(n, r, seed))
        }
        other => Err(format!("unknown topology `{other}`")),
    }
}

/// Checks a rates spec without a graph at hand (syntax only).
pub fn parse_rates_kind(spec: &str) -> Result<(), String> {
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "walk" | "split" | "distsplit" | "gradient" | "nominal" => Ok(()),
        "alternating" => {
            if arg.is_empty() {
                Ok(())
            } else {
                arg.parse::<f64>()
                    .map(|_| ())
                    .map_err(|_| format!("bad period `{arg}` in rates spec `{spec}`"))
            }
        }
        other => Err(format!("unknown rates spec `{other}`")),
    }
}

/// Builds per-node hardware-rate schedules from a spec.
///
/// `walk` (seeded random walk) | `split` (fast half by node index) |
/// `distsplit` (fast half by distance from node 0 — the generic
/// skew-builder used by the figure benches) | `gradient` | `nominal` |
/// `alternating:PERIOD`.
pub fn build_rates(
    spec: &str,
    graph: &Graph,
    drift: DriftBounds,
    horizon: f64,
    seed: u64,
) -> Result<Vec<RateSchedule>, String> {
    let n = graph.len();
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "walk" => Ok(rates::random_walk(n, drift, 5.0, horizon, seed)),
        "split" => Ok(rates::split(n, drift, |v| v < n / 2)),
        "distsplit" => {
            let dist = graph.distances_from(NodeId(0));
            let half = graph.diameter() / 2;
            Ok(rates::split(n, drift, move |v| dist[v] < half))
        }
        "gradient" => Ok(rates::gradient(n, drift)),
        "nominal" => Ok(rates::nominal(n)),
        "alternating" => {
            let period: f64 = if arg.is_empty() {
                10.0
            } else {
                arg.parse().map_err(|_| format!("bad period `{arg}`"))?
            };
            Ok(rates::alternating(n, drift, period, horizon))
        }
        other => Err(format!("unknown rates spec `{other}`")),
    }
}

/// Checks a delay spec without a graph at hand (syntax only).
pub fn parse_delay_kind(spec: &str) -> Result<(), String> {
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "uniform" | "const" | "zero" | "directional" => Ok(()),
        "wavefront" => {
            if arg.is_empty() {
                Ok(())
            } else {
                arg.parse::<u32>()
                    .map(|_| ())
                    .map_err(|_| format!("bad boundary `{arg}` in delay spec `{spec}`"))
            }
        }
        other => Err(format!("unknown delays spec `{other}`")),
    }
}

/// A delay model chosen at runtime — one enum so the engine monomorphizes
/// once per algorithm rather than once per (algorithm × delay model).
#[derive(Debug, Clone)]
pub enum SweepDelay {
    /// Uniform random delays in `[0, 𝒯̂]`.
    Uniform(UniformDelay),
    /// A fixed delay (`const` ⇒ 𝒯̂/2, `zero` ⇒ 0).
    Constant(ConstantDelay),
    /// Slow away from / fast toward the reference node.
    Directional(DirectionalDelay),
    /// The flipping wavefront adversary (F2's local-skew builder).
    Wavefront(WavefrontDelay),
}

impl DelayModel for SweepDelay {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        match self {
            SweepDelay::Uniform(m) => m.delivery(ctx),
            SweepDelay::Constant(m) => m.delivery(ctx),
            SweepDelay::Directional(m) => m.delivery(ctx),
            SweepDelay::Wavefront(m) => m.delivery(ctx),
        }
    }

    fn uncertainty(&self) -> Option<f64> {
        match self {
            SweepDelay::Uniform(m) => m.uncertainty(),
            SweepDelay::Constant(m) => m.uncertainty(),
            SweepDelay::Directional(m) => m.uncertainty(),
            SweepDelay::Wavefront(m) => m.uncertainty(),
        }
    }

    // Forwarded explicitly: the trait defaults would answer `None` for every
    // variant and silently keep `gcs run --threads` sequential even under
    // `const`/`wavefront` delays.
    fn min_delay(&self) -> Option<f64> {
        match self {
            SweepDelay::Uniform(m) => m.min_delay(),
            SweepDelay::Constant(m) => m.min_delay(),
            SweepDelay::Directional(m) => m.min_delay(),
            SweepDelay::Wavefront(m) => m.min_delay(),
        }
    }

    fn lookahead_at(&self, now: f64) -> Option<Lookahead> {
        match self {
            SweepDelay::Uniform(m) => m.lookahead_at(now),
            SweepDelay::Constant(m) => m.lookahead_at(now),
            SweepDelay::Directional(m) => m.lookahead_at(now),
            SweepDelay::Wavefront(m) => m.lookahead_at(now),
        }
    }
}

/// Builds a delay model from a spec.
///
/// `uniform | const | zero | directional | wavefront[:BOUNDARY]`.
/// Returns the model plus a minimum horizon it needs to play out
/// (`wavefront` must run past its flip time), which callers take the max
/// of with their own horizon.
pub fn build_delay(
    spec: &str,
    graph: &Graph,
    t: f64,
    eps: f64,
    seed: u64,
) -> Result<(SweepDelay, f64), String> {
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "uniform" => Ok((SweepDelay::Uniform(UniformDelay::new(t, seed)), 0.0)),
        "const" => Ok((SweepDelay::Constant(ConstantDelay::new(t / 2.0)), 0.0)),
        "zero" => Ok((SweepDelay::Constant(ConstantDelay::new(0.0)), 0.0)),
        "directional" => Ok((
            SweepDelay::Directional(DirectionalDelay::new(graph, NodeId(0), 0.0, t)),
            0.0,
        )),
        "wavefront" => {
            let boundary: u32 = if arg.is_empty() {
                (graph.diameter() / 2).max(1)
            } else {
                arg.parse().map_err(|_| format!("bad boundary `{arg}`"))?
            };
            let flip = boundary as f64 * t / (2.0 * eps) + 20.0;
            Ok((
                SweepDelay::Wavefront(WavefrontDelay::new(graph, NodeId(0), t, flip, boundary)),
                flip + 20.0,
            ))
        }
        other => Err(format!("unknown delays spec `{other}`")),
    }
}

/// Resolves a sweep `chaos` axis value into a fault schedule: `none` (or
/// empty) → no faults, a `*.chaos` path → the file's `fault =` lines, and
/// anything else → an inline `;`-separated clause list (see
/// [`gcs_adversary::fault::parse_schedule`]).
///
/// # Errors
///
/// Returns the file-read or clause-parse failure.
pub fn resolve_chaos(spec: &str) -> Result<Vec<gcs_adversary::FaultClause>, String> {
    if spec.ends_with(".chaos") {
        let text =
            std::fs::read_to_string(spec).map_err(|e| format!("chaos file `{spec}`: {e}"))?;
        return gcs_adversary::parse_schedule(&text)
            .map_err(|e| format!("chaos file `{spec}`: {e}"));
    }
    gcs_adversary::parse_schedule(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_parse() {
        for spec in [
            "path:8",
            "ring:8",
            "star:5",
            "tree:15",
            "complete:4",
            "hypercube:3",
            "grid:3x4",
            "torus:4x4",
            "er:10:0.3",
            "geo:10:0.5",
        ] {
            assert!(parse_topology(spec, 1).is_ok(), "{spec} should parse");
        }
        assert!(parse_topology("moebius:8", 1).is_err());
        assert!(parse_topology("grid:9", 1).is_err());
        assert!(parse_topology("path", 1).is_err());
    }

    #[test]
    fn rates_and_delay_kinds_validate() {
        for spec in ["walk", "split", "distsplit", "alternating:5"] {
            parse_rates_kind(spec).unwrap();
        }
        assert!(parse_rates_kind("chaos").is_err());
        for spec in ["uniform", "const", "zero", "directional", "wavefront:4"] {
            parse_delay_kind(spec).unwrap();
        }
        assert!(parse_delay_kind("wormhole").is_err());
        assert!(parse_delay_kind("wavefront:x").is_err());
    }

    #[test]
    fn wavefront_extends_horizon() {
        let g = topology::path(9);
        let (_, min_h) = build_delay("wavefront", &g, 0.25, 0.02, 0).unwrap();
        // boundary = 4, flip = 4·0.25/(2·0.02) + 20 = 45, min horizon 65.
        assert!((min_h - 65.0).abs() < 1e-9);
    }
}
