//! The worker pool: a shared work queue over `std::thread`, panic
//! isolation per job, and **in-order streaming emission** of results.
//!
//! Workers claim job indices from an atomic counter and run them
//! independently. Each completed (or failed, or panicked) job is stored at
//! its index; a watermark then advances over the longest completed prefix,
//! invoking the caller's emit callback for each job **in index order** —
//! so consumers (aggregators, CSV/JSONL writers) see the exact same
//! sequence whether the pool ran with 1 worker or 16. Nothing is buffered
//! beyond the out-of-order suffix, so emission is streaming: a slow job
//! holds back emission but not execution.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// What became of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job returned an error, or its code panicked (the panic is
    /// caught; the message records it). Other jobs are unaffected.
    Failed(String),
}

impl<T> JobOutcome<T> {
    /// The completed value, if any.
    pub fn completed(&self) -> Option<&T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            JobOutcome::Failed(_) => None,
        }
    }

    /// The failure message, if any.
    pub fn failure(&self) -> Option<&str> {
        match self {
            JobOutcome::Completed(_) => None,
            JobOutcome::Failed(e) => Some(e),
        }
    }
}

/// Wall-time accounting for one pool run.
///
/// Collected by [`run_pool_timed`]; purely observational — the job
/// results and the emit order are byte-identical with or without it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads actually used (after clamping to the job count).
    pub workers: usize,
    /// Wall time of the whole pool run.
    pub wall: Duration,
    /// Per-job wall times, indexed by job.
    pub job_wall: Vec<Duration>,
}

impl PoolStats {
    /// Summed job wall time (total useful work).
    pub fn busy(&self) -> Duration {
        self.job_wall.iter().sum()
    }

    /// Fraction of worker capacity spent running jobs:
    /// `busy / (wall × workers)`, in `[0, 1]` up to timer noise.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity > 0.0 {
            self.busy().as_secs_f64() / capacity
        } else {
            0.0
        }
    }

    /// Mean per-job wall time.
    pub fn mean_job(&self) -> Duration {
        if self.job_wall.is_empty() {
            Duration::ZERO
        } else {
            self.busy() / self.job_wall.len() as u32
        }
    }

    /// Longest single job.
    pub fn max_job(&self) -> Duration {
        self.job_wall
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Renders the accounting block appended to sweep aggregate output.
    pub fn render(&self) -> String {
        format!(
            "pool: {} jobs on {} workers in {:.3}s  (busy {:.3}s, utilization {:.1}%, \
             job mean {:.4}s, max {:.4}s)\n",
            self.job_wall.len(),
            self.workers,
            self.wall.as_secs_f64(),
            self.busy().as_secs_f64(),
            100.0 * self.utilization(),
            self.mean_job().as_secs_f64(),
            self.max_job().as_secs_f64(),
        )
    }
}

/// A progress snapshot handed to the live-progress callback after each
/// job completes (in completion order, under the pool's result lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolProgress {
    /// Jobs finished so far.
    pub done: usize,
    /// Total jobs.
    pub total: usize,
    /// Wall time since the pool started.
    pub elapsed: Duration,
}

impl PoolProgress {
    /// Estimated time to completion, extrapolating the mean job rate.
    pub fn eta(&self) -> Duration {
        if self.done == 0 || self.done >= self.total {
            Duration::ZERO
        } else {
            self.elapsed
                .mul_f64((self.total - self.done) as f64 / self.done as f64)
        }
    }
}

struct EmitState<T, E> {
    results: Vec<Option<JobOutcome<T>>>,
    watermark: usize,
    emit: E,
    job_wall: Vec<Duration>,
    done: usize,
}

/// Runs jobs `0..count` on `workers` threads and returns all outcomes in
/// index order.
///
/// `run` executes one job; it is called from worker threads and must be
/// `Sync`. A panic inside `run` is caught and converted into
/// [`JobOutcome::Failed`] — the pool keeps draining the remaining jobs.
///
/// `emit` is invoked exactly once per job, **in strictly increasing index
/// order** regardless of completion order or worker count, as soon as the
/// completed prefix reaches that job. It runs under the pool's result lock,
/// so it should do cheap work (aggregation, buffered writes).
pub fn run_pool<T, F, E>(count: usize, workers: usize, run: F, emit: E) -> Vec<JobOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T, String> + Sync,
    E: FnMut(usize, &JobOutcome<T>) + Send,
{
    run_pool_timed(count, workers, run, emit, None::<fn(PoolProgress)>).0
}

/// Like [`run_pool`], additionally returning wall-time accounting and
/// optionally invoking `progress` after each job completes (in completion
/// order — *not* emit order — so a live display updates immediately).
///
/// Timing is observational only: results, emit order, and everything the
/// emit callback sees are identical to [`run_pool`]'s.
pub fn run_pool_timed<T, F, E, G>(
    count: usize,
    workers: usize,
    run: F,
    emit: E,
    mut progress: Option<G>,
) -> (Vec<JobOutcome<T>>, PoolStats)
where
    T: Send,
    F: Fn(usize) -> Result<T, String> + Sync,
    E: FnMut(usize, &JobOutcome<T>) + Send,
    G: FnMut(PoolProgress) + Send,
{
    let workers = workers.max(1).min(count.max(1));
    let next = AtomicUsize::new(0);
    let pool_started = Instant::now();
    let state = Mutex::new(EmitState {
        results: (0..count).map(|_| None).collect(),
        watermark: 0,
        emit,
        job_wall: vec![Duration::ZERO; count],
        done: 0,
    });
    // Paired with the highest done-count already reported, so the live
    // display never goes backwards when completions race.
    let progress = Mutex::new((0usize, progress.as_mut()));

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let job_started = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(|| run(index))) {
                    Ok(Ok(value)) => JobOutcome::Completed(value),
                    Ok(Err(message)) => JobOutcome::Failed(message),
                    Err(payload) => JobOutcome::Failed(panic_message(payload.as_ref())),
                };
                let job_wall = job_started.elapsed();
                let done = {
                    let mut state = state.lock().expect("pool state poisoned");
                    state.results[index] = Some(outcome);
                    state.job_wall[index] = job_wall;
                    state.done += 1;
                    // Advance the watermark over the completed prefix,
                    // emitting each newly reachable job in index order.
                    while state.watermark < count && state.results[state.watermark].is_some() {
                        let at = state.watermark;
                        state.watermark += 1;
                        let ready = state.results[at].take().expect("checked is_some");
                        (state.emit)(at, &ready);
                        state.results[at] = Some(ready);
                    }
                    state.done
                };
                let mut guard = progress.lock().expect("progress poisoned");
                let (reported, callback) = &mut *guard;
                if done > *reported {
                    *reported = done;
                    if let Some(callback) = callback.as_deref_mut() {
                        callback(PoolProgress {
                            done,
                            total: count,
                            elapsed: pool_started.elapsed(),
                        });
                    }
                }
            });
        }
    });

    let state = state.into_inner().expect("pool state poisoned");
    debug_assert_eq!(state.watermark, count, "every job must have been emitted");
    let stats = PoolStats {
        workers,
        wall: pool_started.elapsed(),
        job_wall: state.job_wall,
    };
    let outcomes = state
        .results
        .into_iter()
        .map(|slot| slot.expect("every job must have completed"))
        .collect();
    (outcomes, stats)
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn emits_in_index_order_under_out_of_order_completion() {
        let count = 24;
        // Early jobs sleep longest, so high indices finish first under
        // parallelism — the watermark must still emit 0, 1, 2, …
        let run = |i: usize| {
            thread::sleep(Duration::from_millis(((count - i) % 5) as u64));
            Ok(i * 10)
        };
        let mut seen = Vec::new();
        let outcomes = run_pool(count, 8, run, |i, _| seen.push(i));
        assert_eq!(seen, (0..count).collect::<Vec<_>>());
        assert_eq!(outcomes.len(), count);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.completed(), Some(&(i * 10)));
        }
    }

    #[test]
    fn pool_drains_every_job_once() {
        let ran = AtomicU64::new(0);
        let outcomes = run_pool(
            100,
            7,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i % 3 == 0 {
                    Err(format!("job {i} declined"))
                } else {
                    Ok(i)
                }
            },
            |_, _| {},
        );
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(
            outcomes.iter().filter(|o| o.failure().is_some()).count(),
            34
        );
    }

    #[test]
    fn concurrency_never_exceeds_requested_workers() {
        // The pool is the sweep's *only* source of parallelism: jobs run
        // their engines with the sequential loop (see `job::exec`), so the
        // machine-wide thread budget is exactly `--jobs`. A high-water
        // counter over simulated engine runs pins that: even with far more
        // jobs than workers, no more than `workers` jobs are ever inside
        // `run` at once.
        let workers = 3;
        let live = AtomicU64::new(0);
        let high_water = AtomicU64::new(0);
        let run = |i: usize| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            high_water.fetch_max(now, Ordering::SeqCst);
            // A real (if tiny) engine run, standing in for a sweep job.
            let graph = gcs_graph::topology::path(4);
            let params = gcs_core::Params::recommended(0.01, 0.1).unwrap();
            let mut engine = gcs_sim::Engine::builder(graph)
                .protocols(vec![gcs_core::AOpt::new(params); 4])
                .delay_model(gcs_sim::ConstantDelay::new(0.05))
                .build();
            engine.wake_all_at(0.0);
            engine.run_until(2.0);
            live.fetch_sub(1, Ordering::SeqCst);
            Ok(i)
        };
        let outcomes = run_pool(32, workers, run, |_, _| {});
        assert_eq!(outcomes.len(), 32);
        assert!(outcomes.iter().all(|o| o.completed().is_some()));
        let peak = high_water.load(Ordering::SeqCst);
        assert!(
            peak <= workers as u64,
            "pool oversubscribed: {peak} concurrent jobs > {workers} workers"
        );
        assert!(peak >= 1);
    }

    #[test]
    fn zero_jobs_and_zero_workers_are_fine() {
        let outcomes = run_pool(0, 0, |_| Ok(()), |_, _| {});
        assert!(outcomes.is_empty());
        let outcomes = run_pool(3, 0, Ok, |_, _| {});
        assert_eq!(outcomes.len(), 3);
    }

    #[test]
    fn timed_pool_accounts_every_job_and_reports_progress() {
        let mut seen = Vec::new();
        let progress = Mutex::new(Vec::new());
        let (outcomes, stats) = run_pool_timed(
            10,
            3,
            |i| {
                thread::sleep(Duration::from_millis(2));
                Ok(i)
            },
            |i, _| seen.push(i),
            Some(|p: PoolProgress| progress.lock().unwrap().push(p.done)),
        );
        assert_eq!(outcomes.len(), 10);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.job_wall.len(), 10);
        assert!(stats
            .job_wall
            .iter()
            .all(|d| *d >= Duration::from_millis(1)));
        assert!(stats.busy() <= stats.wall * 3 + Duration::from_millis(50));
        assert!(stats.utilization() > 0.0);
        assert!(stats.render().contains("10 jobs on 3 workers"));

        let progress = progress.into_inner().unwrap();
        // Monotone, ends at the full count (intermediate counts may be
        // skipped when completions race).
        assert!(progress.windows(2).all(|w| w[0] < w[1]), "{progress:?}");
        assert_eq!(progress.last(), Some(&10));
    }

    #[test]
    fn eta_extrapolates_mean_rate() {
        let p = PoolProgress {
            done: 4,
            total: 12,
            elapsed: Duration::from_secs(2),
        };
        assert_eq!(p.eta(), Duration::from_secs(4));
        let done = PoolProgress {
            done: 12,
            total: 12,
            elapsed: Duration::from_secs(6),
        };
        assert_eq!(done.eta(), Duration::ZERO);
    }
}
