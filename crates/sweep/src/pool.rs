//! The worker pool: a shared work queue over `std::thread`, panic
//! isolation per job, and **in-order streaming emission** of results.
//!
//! Workers claim job indices from an atomic counter and run them
//! independently. Each completed (or failed, or panicked) job is stored at
//! its index; a watermark then advances over the longest completed prefix,
//! invoking the caller's emit callback for each job **in index order** —
//! so consumers (aggregators, CSV/JSONL writers) see the exact same
//! sequence whether the pool ran with 1 worker or 16. Nothing is buffered
//! beyond the out-of-order suffix, so emission is streaming: a slow job
//! holds back emission but not execution.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// What became of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job returned an error, or its code panicked (the panic is
    /// caught; the message records it). Other jobs are unaffected.
    Failed(String),
}

impl<T> JobOutcome<T> {
    /// The completed value, if any.
    pub fn completed(&self) -> Option<&T> {
        match self {
            JobOutcome::Completed(v) => Some(v),
            JobOutcome::Failed(_) => None,
        }
    }

    /// The failure message, if any.
    pub fn failure(&self) -> Option<&str> {
        match self {
            JobOutcome::Completed(_) => None,
            JobOutcome::Failed(e) => Some(e),
        }
    }
}

struct EmitState<T, E> {
    results: Vec<Option<JobOutcome<T>>>,
    watermark: usize,
    emit: E,
}

/// Runs jobs `0..count` on `workers` threads and returns all outcomes in
/// index order.
///
/// `run` executes one job; it is called from worker threads and must be
/// `Sync`. A panic inside `run` is caught and converted into
/// [`JobOutcome::Failed`] — the pool keeps draining the remaining jobs.
///
/// `emit` is invoked exactly once per job, **in strictly increasing index
/// order** regardless of completion order or worker count, as soon as the
/// completed prefix reaches that job. It runs under the pool's result lock,
/// so it should do cheap work (aggregation, buffered writes).
pub fn run_pool<T, F, E>(count: usize, workers: usize, run: F, emit: E) -> Vec<JobOutcome<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T, String> + Sync,
    E: FnMut(usize, &JobOutcome<T>) + Send,
{
    let workers = workers.max(1).min(count.max(1));
    let next = AtomicUsize::new(0);
    let state = Mutex::new(EmitState {
        results: (0..count).map(|_| None).collect(),
        watermark: 0,
        emit,
    });

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let outcome = match catch_unwind(AssertUnwindSafe(|| run(index))) {
                    Ok(Ok(value)) => JobOutcome::Completed(value),
                    Ok(Err(message)) => JobOutcome::Failed(message),
                    Err(payload) => JobOutcome::Failed(panic_message(payload.as_ref())),
                };
                let mut state = state.lock().expect("pool state poisoned");
                state.results[index] = Some(outcome);
                // Advance the watermark over the completed prefix, emitting
                // each newly reachable job in index order.
                while state.watermark < count && state.results[state.watermark].is_some() {
                    let at = state.watermark;
                    state.watermark += 1;
                    let ready = state.results[at].take().expect("checked is_some");
                    (state.emit)(at, &ready);
                    state.results[at] = Some(ready);
                }
            });
        }
    });

    let state = state.into_inner().expect("pool state poisoned");
    debug_assert_eq!(state.watermark, count, "every job must have been emitted");
    state
        .results
        .into_iter()
        .map(|slot| slot.expect("every job must have completed"))
        .collect()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked: <non-string payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn emits_in_index_order_under_out_of_order_completion() {
        let count = 24;
        // Early jobs sleep longest, so high indices finish first under
        // parallelism — the watermark must still emit 0, 1, 2, …
        let run = |i: usize| {
            thread::sleep(Duration::from_millis(((count - i) % 5) as u64));
            Ok(i * 10)
        };
        let mut seen = Vec::new();
        let outcomes = run_pool(count, 8, run, |i, _| seen.push(i));
        assert_eq!(seen, (0..count).collect::<Vec<_>>());
        assert_eq!(outcomes.len(), count);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.completed(), Some(&(i * 10)));
        }
    }

    #[test]
    fn pool_drains_every_job_once() {
        let ran = AtomicU64::new(0);
        let outcomes = run_pool(
            100,
            7,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i % 3 == 0 {
                    Err(format!("job {i} declined"))
                } else {
                    Ok(i)
                }
            },
            |_, _| {},
        );
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(
            outcomes.iter().filter(|o| o.failure().is_some()).count(),
            34
        );
    }

    #[test]
    fn zero_jobs_and_zero_workers_are_fine() {
        let outcomes = run_pool(0, 0, |_| Ok(()), |_, _| {});
        assert!(outcomes.is_empty());
        let outcomes = run_pool(3, 0, Ok, |_, _| {});
        assert_eq!(outcomes.len(), 3);
    }
}
