//! Deterministic CSV and JSONL emission for sweep results.
//!
//! Rows are hand-rolled (no serialization dependency), with a fixed column
//! and field order and Rust's shortest-round-trip float `Display` — the
//! same conventions as the PR-1 event-stream exporter
//! ([`gcs_analysis::events`]), so `gcs replay-check` can diff two sweep
//! JSONL files just like two event logs.

use crate::agg::{Stat, SweepAggregate};
use crate::job::JobResult;
use crate::pool::JobOutcome;
use crate::spec::JobSpec;

/// The per-job CSV header row (no trailing newline).
pub const CSV_HEADER: &str = "job,topology,algo,eps,t,sigma,delay,rates,chaos,seed,status,nodes,\
     diameter,horizon,global_skew,local_skew,global_bound,local_bound,send_events,\
     transmissions,deliveries,dropped,dropped_model,dropped_faults,duplicated,events,\
     watchdog_tripped,error";

/// Encodes one job outcome as a CSV row (no trailing newline), columns as
/// in [`CSV_HEADER`].
pub fn csv_row(job: &JobSpec, outcome: &JobOutcome<JobResult>) -> String {
    let sigma = job.sigma.map_or(String::new(), |s| s.to_string());
    let head = format!(
        "{},{},{},{},{},{},{},{},{},{}",
        job.index,
        csv_escape(&job.topology),
        job.algo,
        job.eps,
        job.t,
        sigma,
        csv_escape(&job.delay),
        csv_escape(&job.rates),
        csv_escape(&job.chaos),
        job.seed
    );
    match outcome {
        JobOutcome::Completed(r) => format!(
            "{head},completed,{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},",
            r.nodes,
            r.diameter,
            r.horizon,
            r.global_skew,
            r.local_skew,
            r.global_bound,
            r.local_bound,
            r.send_events,
            r.transmissions,
            r.deliveries,
            r.dropped,
            r.dropped_model,
            r.dropped_faults,
            r.duplicated,
            r.events_recorded,
            r.watchdog_tripped
        ),
        JobOutcome::Failed(message) => {
            format!("{head},failed,,,,,,,,,,,,,,,,,{}", csv_escape(message))
        }
    }
}

/// Encodes one job outcome as a JSONL line (no trailing newline).
pub fn jsonl_row(job: &JobSpec, outcome: &JobOutcome<JobResult>) -> String {
    let sigma = job.sigma.map_or("null".to_string(), |s| s.to_string());
    let head = format!(
        r#"{{"kind":"job","job":{},"topology":{},"algo":{},"eps":{},"t":{},"sigma":{},"delay":{},"rates":{},"chaos":{},"seed":{}"#,
        job.index,
        json_string(&job.topology),
        json_string(&job.algo),
        json_f64(job.eps),
        json_f64(job.t),
        sigma,
        json_string(&job.delay),
        json_string(&job.rates),
        json_string(&job.chaos),
        job.seed
    );
    match outcome {
        JobOutcome::Completed(r) => format!(
            r#"{head},"status":"completed","nodes":{},"diameter":{},"horizon":{},"global_skew":{},"local_skew":{},"global_bound":{},"local_bound":{},"send_events":{},"transmissions":{},"deliveries":{},"dropped":{},"dropped_model":{},"dropped_faults":{},"duplicated":{},"events":{},"watchdog_tripped":{}}}"#,
            r.nodes,
            r.diameter,
            json_f64(r.horizon),
            json_f64(r.global_skew),
            json_f64(r.local_skew),
            json_f64(r.global_bound),
            json_f64(r.local_bound),
            r.send_events,
            r.transmissions,
            r.deliveries,
            r.dropped,
            r.dropped_model,
            r.dropped_faults,
            r.duplicated,
            r.events_recorded,
            r.watchdog_tripped
        ),
        JobOutcome::Failed(message) => format!(
            r#"{head},"status":"failed","error":{}}}"#,
            json_string(message)
        ),
    }
}

/// Encodes the final aggregate as one JSONL summary line (no trailing
/// newline). Emitted after all per-job lines.
pub fn jsonl_summary(agg: &SweepAggregate) -> String {
    format!(
        r#"{{"kind":"summary","jobs":{},"completed":{},"failed":{},"watchdog_trips":{},"global_skew":{},"local_skew":{},"send_events":{},"deliveries":{},"dropped":{},"events":{}}}"#,
        agg.total,
        agg.completed,
        agg.failed,
        agg.watchdog_trips,
        json_stat(&agg.global_skew),
        json_stat(&agg.local_skew),
        json_stat(&agg.send_events),
        json_stat(&agg.deliveries),
        json_stat(&agg.dropped),
        json_stat(&agg.events),
    )
}

fn json_stat(stat: &Stat) -> String {
    let f = |v: Option<f64>| v.map_or("null".to_string(), json_f64);
    format!(
        r#"{{"count":{},"mean":{},"min":{},"p50":{},"p95":{},"p99":{},"max":{}}}"#,
        stat.count(),
        f(stat.mean()),
        f(stat.min()),
        f(stat.quantile(0.50)),
        f(stat.quantile(0.95)),
        f(stat.quantile(0.99)),
        f(stat.max()),
    )
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn job() -> JobSpec {
        SweepSpec::default().expand().remove(0)
    }

    #[test]
    fn failed_rows_escape_messages() {
        let outcome: JobOutcome<JobResult> = JobOutcome::Failed("panicked: \"x, y\"\nline2".into());
        let csv = csv_row(&job(), &outcome);
        assert!(csv.contains("failed"));
        assert!(csv.contains("\"panicked: \"\"x, y\"\"\nline2\""));
        let json = jsonl_row(&job(), &outcome);
        assert!(json.contains(r#""error":"panicked: \"x, y\"\nline2""#));
    }

    #[test]
    fn csv_header_matches_completed_row_arity() {
        let outcome = JobOutcome::Completed(JobResult {
            nodes: 4,
            diameter: 3,
            horizon: 10.0,
            global_skew: 1.0,
            local_skew: 0.5,
            global_bound: 2.0,
            local_bound: 1.0,
            send_events: 10,
            transmissions: 20,
            deliveries: 20,
            dropped: 0,
            dropped_model: 0,
            dropped_faults: 0,
            duplicated: 0,
            events_recorded: 50,
            watchdog_tripped: false,
        });
        let header_cols = CSV_HEADER.split(',').count();
        let row_cols = csv_row(&job(), &outcome).split(',').count();
        assert_eq!(header_cols, row_cols);
        let failed_cols = csv_row(&job(), &JobOutcome::<JobResult>::Failed("e".into()))
            .split(',')
            .count();
        assert_eq!(header_cols, failed_cols);
    }
}
