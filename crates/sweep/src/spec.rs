//! Sweep specifications: a parameter grid and its expansion into jobs.
//!
//! A [`SweepSpec`] names one value list per experiment axis (topology,
//! algorithm, ε̂, 𝒯̂, σ, delay model, rate schedule, seed). [`SweepSpec::expand`]
//! takes the full cross product in a **fixed nesting order** and assigns each
//! combination a job index; everything downstream (the worker pool, the
//! aggregator, the CSV/JSONL emitters) is keyed by that index, which is what
//! makes sweep output independent of worker count.

use std::ops::Range;

use crate::parse::{known_algo, parse_delay_kind, parse_rates_kind, parse_topology};

/// The default seed range: a single execution with seed 0.
const DEFAULT_SEEDS: Range<u64> = 0..1;

/// A parameter grid over executions.
///
/// Each axis is a list; the grid is the cross product of all axes. String
/// axes use the same `kind:arg` mini-language as the `gcs` CLI
/// (see [`crate::parse`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Topology specs, e.g. `path:16`, `grid:6x6`, `er:40:0.08`.
    pub topologies: Vec<String>,
    /// Algorithm names, e.g. `aopt`, `jump`, `max`, `nosync`.
    pub algos: Vec<String>,
    /// Hardware drift bounds ε̂.
    pub eps: Vec<f64>,
    /// Delay bounds 𝒯̂.
    pub t: Vec<f64>,
    /// Logarithm bases σ for the `A^opt` parameterization; `None` means
    /// `Params::recommended` (σ chosen by Eq. 6).
    pub sigmas: Vec<Option<u32>>,
    /// Delay-model specs, e.g. `uniform`, `const`, `directional`,
    /// `wavefront:BOUNDARY`.
    pub delays: Vec<String>,
    /// Rate-schedule specs, e.g. `walk`, `split`, `distsplit`,
    /// `alternating:PERIOD`.
    pub rates: Vec<String>,
    /// Chaos fault schedules: `none`, an inline `;`-separated clause list
    /// (see [`gcs_adversary::fault`]), or a `*.chaos` scenario file path.
    pub chaos: Vec<String>,
    /// Seed range (half-open). Seeds feed random topologies, delay models,
    /// rate schedules, and chaos fault decisions.
    pub seeds: Range<u64>,
    /// Base real-time horizon of each execution.
    pub horizon: f64,
    /// Horizon growth per unit of `diameter × 𝒯̂`: the effective horizon of a
    /// job is `horizon + horizon_per_diameter · D · 𝒯̂` (delay models may
    /// extend it further, e.g. `wavefront` runs past its flip time).
    pub horizon_per_diameter: f64,
    /// Attach the PR-1 invariant watchdog to every job and count trips.
    pub watchdog: bool,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            topologies: vec!["path:16".into()],
            algos: vec!["aopt".into()],
            eps: vec![1e-2],
            t: vec![0.1],
            sigmas: vec![None],
            delays: vec!["uniform".into()],
            rates: vec!["walk".into()],
            chaos: vec!["none".into()],
            seeds: DEFAULT_SEEDS,
            horizon: 60.0,
            horizon_per_diameter: 0.0,
            watchdog: false,
        }
    }
}

/// One fully resolved point of the grid: an independent, self-describing
/// unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the deterministic expansion order; the job's identity
    /// in every output stream.
    pub index: usize,
    /// Topology spec.
    pub topology: String,
    /// Algorithm name.
    pub algo: String,
    /// Drift bound ε̂.
    pub eps: f64,
    /// Delay bound 𝒯̂.
    pub t: f64,
    /// σ override (`None` = recommended parameters).
    pub sigma: Option<u32>,
    /// Delay-model spec.
    pub delay: String,
    /// Rate-schedule spec.
    pub rates: String,
    /// Chaos fault schedule (`none`, inline clauses, or a `*.chaos` path).
    pub chaos: String,
    /// Seed for every randomized component of the job.
    pub seed: u64,
    /// Base horizon (before diameter scaling).
    pub horizon: f64,
    /// Per-`D·𝒯̂` horizon growth.
    pub horizon_per_diameter: f64,
    /// Whether to run the invariant watchdog.
    pub watchdog: bool,
}

impl JobSpec {
    /// A compact one-line description, used in progress and failure output.
    pub fn label(&self) -> String {
        let sigma = match self.sigma {
            Some(s) => format!(" sigma={s}"),
            None => String::new(),
        };
        let chaos = if self.chaos == "none" {
            String::new()
        } else {
            format!(" chaos={}", self.chaos)
        };
        format!(
            "#{} {} {} eps={} t={}{} {} {}{} seed={}",
            self.index,
            self.algo,
            self.topology,
            self.eps,
            self.t,
            sigma,
            self.delay,
            self.rates,
            chaos,
            self.seed
        )
    }
}

impl SweepSpec {
    /// Expands the grid into jobs, in the fixed nesting order
    /// `topology → algo → ε̂ → 𝒯̂ → σ → delay → rates → chaos → seed`
    /// (seed varies fastest). Job `index` is the enumeration position.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.len());
        for topology in &self.topologies {
            for algo in &self.algos {
                for &eps in &self.eps {
                    for &t in &self.t {
                        for &sigma in &self.sigmas {
                            for delay in &self.delays {
                                for rates in &self.rates {
                                    for chaos in &self.chaos {
                                        for seed in self.seeds.clone() {
                                            jobs.push(JobSpec {
                                                index: jobs.len(),
                                                topology: topology.clone(),
                                                algo: algo.clone(),
                                                eps,
                                                t,
                                                sigma,
                                                delay: delay.clone(),
                                                rates: rates.clone(),
                                                chaos: chaos.clone(),
                                                seed,
                                                horizon: self.horizon,
                                                horizon_per_diameter: self.horizon_per_diameter,
                                                watchdog: self.watchdog,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// Number of jobs the grid expands to.
    pub fn len(&self) -> usize {
        self.topologies.len()
            * self.algos.len()
            * self.eps.len()
            * self.t.len()
            * self.sigmas.len()
            * self.delays.len()
            * self.rates.len()
            * self.chaos.len()
            * self.seeds.clone().count()
    }

    /// Whether the grid is empty (some axis has no values).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks every axis value parses, without running anything.
    ///
    /// Random topologies are instantiated with the first seed only — sizes
    /// and spec syntax do not depend on the seed.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Err("sweep grid is empty (some axis has no values)".into());
        }
        let probe_seed = self.seeds.start;
        for t in &self.topologies {
            parse_topology(t, probe_seed)?;
        }
        for a in &self.algos {
            known_algo(a)?;
        }
        for d in &self.delays {
            parse_delay_kind(d)?;
        }
        for r in &self.rates {
            parse_rates_kind(r)?;
        }
        for c in &self.chaos {
            crate::parse::resolve_chaos(c)?;
        }
        for &e in &self.eps {
            if !(e > 0.0 && e < 1.0) {
                return Err(format!("eps must lie in (0, 1), got {e}"));
            }
        }
        for &t in &self.t {
            if !(t > 0.0 && t.is_finite()) {
                return Err(format!("t must be positive, got {t}"));
            }
        }
        if !(self.horizon >= 0.0 && self.horizon.is_finite()) {
            return Err(format!(
                "horizon must be non-negative, got {}",
                self.horizon
            ));
        }
        if !(self.horizon_per_diameter >= 0.0 && self.horizon_per_diameter.is_finite()) {
            return Err(format!(
                "horizon-per-d must be non-negative, got {}",
                self.horizon_per_diameter
            ));
        }
        Ok(())
    }

    /// Parses a spec file: one `key = value` per line, `#` comments, blank
    /// lines ignored. Keys and value syntax are exactly the `gcs sweep`
    /// flag names (see [`SweepSpec::apply`]).
    pub fn parse_str(text: &str) -> Result<Self, String> {
        let mut spec = SweepSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("spec line {}: expected `key = value`", lineno + 1))?;
            spec.apply(key.trim(), value.trim())
                .map_err(|e| format!("spec line {}: {e}", lineno + 1))?;
        }
        Ok(spec)
    }

    /// Sets one axis from its textual form. Shared by the spec-file parser
    /// and the `gcs sweep` CLI flags; list values are comma-separated.
    ///
    /// | key | value |
    /// |-----|-------|
    /// | `topologies` | topology specs |
    /// | `algos` | algorithm names |
    /// | `eps` | floats |
    /// | `t` | floats |
    /// | `sigma` | integers, or `recommended` |
    /// | `delays` | delay specs |
    /// | `rates` | rate specs |
    /// | `chaos` | `none`, inline fault clauses, or `*.chaos` paths |
    /// | `seeds` | `N` (⇒ `0..N`) or `A..B` |
    /// | `horizon` | float |
    /// | `horizon-per-d` | float |
    /// | `watchdog` | `true` / `false` |
    pub fn apply(&mut self, key: &str, value: &str) -> Result<(), String> {
        match key {
            "topologies" => self.topologies = parse_list(value),
            "algos" => self.algos = parse_list(value),
            "eps" => self.eps = parse_f64_list(key, value)?,
            "t" => self.t = parse_f64_list(key, value)?,
            "sigma" => {
                self.sigmas = parse_list(value)
                    .iter()
                    .map(|s| match s.as_str() {
                        "recommended" => Ok(None),
                        v => v
                            .parse::<u32>()
                            .map(Some)
                            .map_err(|_| format!("sigma: `{v}` is not an integer")),
                    })
                    .collect::<Result<_, _>>()?
            }
            "delays" => self.delays = parse_list(value),
            "rates" => self.rates = parse_list(value),
            "chaos" => self.chaos = parse_list(value),
            "seeds" => {
                self.seeds = match value.split_once("..") {
                    Some((a, b)) => {
                        let a: u64 = a
                            .trim()
                            .parse()
                            .map_err(|_| format!("seeds: bad range start `{a}`"))?;
                        let b: u64 = b
                            .trim()
                            .parse()
                            .map_err(|_| format!("seeds: bad range end `{b}`"))?;
                        a..b
                    }
                    None => {
                        let n: u64 = value
                            .parse()
                            .map_err(|_| format!("seeds: `{value}` is not a count or range"))?;
                        0..n
                    }
                }
            }
            "horizon" => {
                self.horizon = value
                    .parse()
                    .map_err(|_| format!("horizon: `{value}` is not a number"))?
            }
            "horizon-per-d" => {
                self.horizon_per_diameter = value
                    .parse()
                    .map_err(|_| format!("horizon-per-d: `{value}` is not a number"))?
            }
            "watchdog" => {
                self.watchdog = match value {
                    "true" | "1" | "yes" => true,
                    "false" | "0" | "no" => false,
                    other => return Err(format!("watchdog: `{other}` is not a boolean")),
                }
            }
            other => return Err(format!("unknown sweep key `{other}`")),
        }
        Ok(())
    }
}

fn parse_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_f64_list(key: &str, value: &str) -> Result<Vec<f64>, String> {
    parse_list(value)
        .iter()
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("{key}: `{s}` is not a number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_order_is_seed_fastest() {
        let spec = SweepSpec {
            topologies: vec!["path:4".into(), "ring:4".into()],
            seeds: 0..3,
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 6);
        assert_eq!(spec.len(), 6);
        let key: Vec<(String, u64)> = jobs.iter().map(|j| (j.topology.clone(), j.seed)).collect();
        assert_eq!(
            key,
            vec![
                ("path:4".into(), 0),
                ("path:4".into(), 1),
                ("path:4".into(), 2),
                ("ring:4".into(), 0),
                ("ring:4".into(), 1),
                ("ring:4".into(), 2),
            ]
        );
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i);
        }
    }

    #[test]
    fn spec_file_round_trip() {
        let text = "
            # figure F4
            topologies = path:65
            algos = aopt
            eps = 0.001
            t = 0.25
            sigma = 2, 4, 8
            delays = directional
            rates = distsplit
            seeds = 0..1
            horizon = 120
        ";
        let spec = SweepSpec::parse_str(text).unwrap();
        assert_eq!(spec.sigmas, vec![Some(2), Some(4), Some(8)]);
        assert_eq!(spec.len(), 3);
        spec.validate().unwrap();
    }

    #[test]
    fn unknown_key_and_bad_values_error() {
        assert!(SweepSpec::parse_str("bogus = 1").is_err());
        assert!(SweepSpec::parse_str("eps = fast").is_err());
        let mut spec = SweepSpec {
            algos: vec!["quantum".into()],
            ..SweepSpec::default()
        };
        assert!(spec.validate().is_err());
        spec.algos = vec![];
        assert!(spec.validate().is_err());
    }
}
