//! Worker-panic isolation: a job whose *protocol code* panics mid-engine
//! must be reported as failed in the sweep summary, while every other job
//! in the sweep still runs to completion.

use gcs_analysis::SkewObserver;
use gcs_graph::{topology, NodeId};
use gcs_sim::{ConstantDelay, Context, Engine, Protocol, TimerId};
use gcs_sweep::{report, run_job, run_pool, SweepAggregate, SweepSpec};

/// A protocol that behaves like a quiet beacon — except that a poisoned
/// node panics from inside the engine's event loop once its hardware
/// clock passes the detonation time.
#[derive(Clone, Debug)]
struct Detonator {
    poisoned: bool,
}

impl Protocol for Detonator {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        ctx.send_all(());
        ctx.set_timer(TimerId(0), ctx.hw() + 1.0);
    }

    fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _from: NodeId, _msg: ()) {}

    fn on_timer(&mut self, ctx: &mut Context<'_, ()>, _timer: TimerId) {
        if self.poisoned && ctx.hw() > 3.0 {
            panic!("protocol invariant breached at hw {:.2}", ctx.hw());
        }
        ctx.set_timer(TimerId(0), ctx.hw() + 1.0);
    }

    fn logical_value(&self, hw: f64) -> f64 {
        hw
    }
}

/// Runs one simulated execution; the run at `poison_index` panics from
/// protocol code inside the engine's event loop.
fn run_detonator_job(index: usize, poison_index: usize) -> Result<f64, String> {
    let n = 4;
    let graph = topology::path(n);
    let mut observer = SkewObserver::new(&graph);
    let mut engine = Engine::builder(graph)
        .protocols(vec![
            Detonator {
                poisoned: index == poison_index,
            };
            n
        ])
        .delay_model(ConstantDelay::new(0.05))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(10.0, |e| observer.observe(e));
    Ok(observer.worst_global())
}

/// Installs a silent panic hook for the intentional detonations (the
/// pool's `catch_unwind` turns them into `JobOutcome::Failed`), runs `f`,
/// and restores the previous hook.
fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(default_hook);
    out
}

#[test]
fn panicking_protocol_fails_its_job_and_spares_the_rest() {
    let poison = 5;
    let outcomes =
        with_silent_panics(|| run_pool(12, 4, |i| run_detonator_job(i, poison), |_, _| {}));

    assert_eq!(outcomes.len(), 12);
    for (i, outcome) in outcomes.iter().enumerate() {
        if i == poison {
            let message = outcome.failure().expect("poisoned job must fail");
            assert!(
                message.contains("panicked") && message.contains("protocol invariant breached"),
                "failure must carry the panic message, got: {message}"
            );
        } else {
            assert!(
                outcome.completed().is_some(),
                "job {i} must complete despite job {poison} panicking"
            );
        }
    }
}

/// The full sweep path: real `run_job` executions plus one injected panic,
/// aggregated via the same emit callback `gcs sweep` uses. The failure is
/// counted, indexed, and serialized without disturbing the other jobs.
#[test]
fn failed_jobs_are_counted_in_summary_and_reports() {
    let spec = SweepSpec {
        topologies: vec!["path:4".into()],
        horizon: 5.0,
        seeds: 0..6,
        ..SweepSpec::default()
    };
    let jobs = spec.expand();
    assert_eq!(jobs.len(), 6);

    let mut aggregate = SweepAggregate::new();
    let outcomes = with_silent_panics(|| {
        run_pool(
            jobs.len(),
            3,
            |i| {
                if i == 2 {
                    panic!("boom {i}");
                }
                run_job(&jobs[i])
            },
            |index, outcome| aggregate.ingest(index, outcome),
        )
    });

    assert_eq!(
        (aggregate.total, aggregate.completed, aggregate.failed),
        (6, 5, 1)
    );
    assert_eq!(
        aggregate.failures,
        vec![(2, "panicked: boom 2".to_string())]
    );
    assert_eq!(aggregate.global_skew.count(), 5);

    // Failed jobs still produce well-formed CSV/JSONL rows.
    let row = report::csv_row(&jobs[2], &outcomes[2]);
    assert!(row.contains(",failed,"));
    assert!(row.ends_with("panicked: boom 2"));
    let json = report::jsonl_row(&jobs[2], &outcomes[2]);
    assert!(json.contains(r#""status":"failed""#));
    assert!(json.contains(r#""error":"panicked: boom 2""#));

    // And the remaining completed jobs produce completed rows.
    assert!(report::csv_row(&jobs[3], &outcomes[3]).contains(",completed,"));
}
