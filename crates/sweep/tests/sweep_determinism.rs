//! `run_sweep_timed` must be observationally identical to `run_sweep`:
//! same outcomes, same emit order, byte-identical CSV/JSONL — with or
//! without the progress callback, at any worker count. The timing and
//! progress machinery behind `gcs sweep --profile` / `--progress` is pure
//! observation.

use std::sync::Mutex;

use gcs_sweep::{report, run_sweep, run_sweep_timed, PoolProgress, SweepSpec};

fn spec() -> SweepSpec {
    SweepSpec {
        topologies: vec!["path:5".into(), "ring:6".into()],
        eps: vec![0.01, 0.02],
        seeds: 0..3,
        horizon: 25.0,
        ..SweepSpec::default()
    }
}

/// Renders the full deterministic output (CSV rows + JSONL rows + summary)
/// the way `gcs sweep` streams it.
fn render(emitted: &[(String, String)], summary: &str) -> String {
    let mut out = String::from(report::CSV_HEADER);
    out.push('\n');
    for (csv, jsonl) in emitted {
        out.push_str(csv);
        out.push('\n');
        out.push_str(jsonl);
        out.push('\n');
    }
    out.push_str(summary);
    out.push('\n');
    out
}

#[test]
fn timed_sweep_output_is_byte_identical_to_untimed() {
    let jobs = spec().expand();
    assert_eq!(jobs.len(), 12);

    let mut plain_rows = Vec::new();
    let (plain_outcomes, plain_agg) = run_sweep(&jobs, 2, |job, outcome| {
        plain_rows.push((
            report::csv_row(job, outcome),
            report::jsonl_row(job, outcome),
        ));
    });
    let reference = render(&plain_rows, &report::jsonl_summary(&plain_agg));

    // Timed, no progress callback, different worker count.
    let mut rows = Vec::new();
    let (outcomes, agg, stats) = run_sweep_timed(
        &jobs,
        4,
        |job, outcome| {
            rows.push((
                report::csv_row(job, outcome),
                report::jsonl_row(job, outcome),
            ));
        },
        None::<fn(PoolProgress)>,
    );
    assert_eq!(outcomes, plain_outcomes);
    assert_eq!(render(&rows, &report::jsonl_summary(&agg)), reference);
    assert_eq!(stats.job_wall.len(), jobs.len());

    // Timed, with a live progress callback.
    let progress = Mutex::new(Vec::new());
    let mut rows = Vec::new();
    let (outcomes, agg, stats) = run_sweep_timed(
        &jobs,
        3,
        |job, outcome| {
            rows.push((
                report::csv_row(job, outcome),
                report::jsonl_row(job, outcome),
            ));
        },
        Some(|p: PoolProgress| progress.lock().unwrap().push(p.done)),
    );
    assert_eq!(outcomes, plain_outcomes);
    assert_eq!(render(&rows, &report::jsonl_summary(&agg)), reference);
    assert_eq!(stats.workers, 3);
    assert!(stats.utilization() > 0.0);

    let progress = progress.into_inner().unwrap();
    assert!(
        progress.windows(2).all(|w| w[0] < w[1]),
        "progress counts must be strictly monotone: {progress:?}"
    );
    assert_eq!(progress.last(), Some(&jobs.len()));
}
