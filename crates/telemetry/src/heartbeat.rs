//! The `gcs-heartbeat/v1` record types and the streaming emitter.
//!
//! Three record kinds share the schema tag:
//!
//! * `beat` — a periodic run heartbeat, paced by simulated time;
//! * `summary` — the final record of a run, extending `beat` with the
//!   parallel driver's aggregate shares;
//! * `sweep` — per-completed-job progress of a parameter sweep.
//!
//! Field units: `t` is simulated time, `wall_ms` is wall-clock milliseconds
//! since the emitter was created, `events_per_sec` is the wall-clock event
//! rate since the previous beat, `replay_share`/`idle_share` are fractions
//! of the parallel phase's wall time in `[0, 1]` (idle summed over all
//! workers, so it can exceed 1 on pathological partitions).

use std::io::{self, Write};
use std::time::Instant;

/// The schema tag stamped on every record.
pub const SCHEMA: &str = "gcs-heartbeat/v1";

/// Watchdog state carried by a heartbeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogStatus {
    /// No watchdog attached to the run.
    Off,
    /// Watchdog attached, no invariant violated so far.
    Ok,
    /// Watchdog attached and tripped.
    Tripped,
}

impl WatchdogStatus {
    fn as_str(self) -> &'static str {
        match self {
            WatchdogStatus::Off => "off",
            WatchdogStatus::Ok => "ok",
            WatchdogStatus::Tripped => "tripped",
        }
    }

    pub(crate) fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(WatchdogStatus::Off),
            "ok" => Some(WatchdogStatus::Ok),
            "tripped" => Some(WatchdogStatus::Tripped),
            _ => None,
        }
    }
}

/// Everything a run owner knows at beat time; the emitter adds pacing,
/// sequence numbers, and wall-clock derivates.
#[derive(Debug, Clone, Copy)]
pub struct BeatInput {
    /// Simulated time of the snapshot driving this beat.
    pub t: f64,
    /// Events processed so far.
    pub events: u64,
    /// Current event-queue depth.
    pub queue_depth: u64,
    /// Armed protocol timers (scheduled minus fired minus cancelled) — a
    /// proxy for pending-slab occupancy.
    pub timers_armed: u64,
    /// Messages dropped so far by the delay model itself (`lossy`-style
    /// loss).
    pub dropped_model: u64,
    /// Messages dropped so far by injected chaos faults — the per-cause
    /// split that makes chaos runs distinguishable from lossy-model runs
    /// in `gcs top`.
    pub dropped_faults: u64,
    /// Worst global skew observed so far, if a skew observer is attached.
    pub skew_global: Option<f64>,
    /// Worst neighbor skew observed so far, if available.
    pub skew_local: Option<f64>,
    /// Watchdog verdict so far.
    pub watchdog: WatchdogStatus,
}

/// Parallel-driver aggregates attached to the final `summary` record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParStats {
    /// Worker threads the parallel phase ran with (1 = sequential run).
    pub threads: u64,
    /// Lookahead windows executed.
    pub windows: u64,
    /// Serial replay share of the parallel phase's wall time, `[0, 1]`.
    pub replay_share: f64,
    /// Worker idle share of the parallel phase's wall time (summed over
    /// workers).
    pub idle_share: f64,
}

/// A parsed `beat` or `summary` record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunBeat {
    /// True for the final `summary` record.
    pub summary: bool,
    /// Beat index within the stream, starting at 0.
    pub seq: u64,
    /// Simulated time.
    pub t: f64,
    /// Events processed so far.
    pub events: u64,
    /// Event-queue depth at the beat.
    pub queue_depth: u64,
    /// Armed protocol timers at the beat.
    pub timers_armed: u64,
    /// Model-attributed drops so far (absent in pre-split streams: 0).
    pub dropped_model: u64,
    /// Fault-attributed drops so far (absent in pre-split streams: 0).
    pub dropped_faults: u64,
    /// Worst global skew so far.
    pub skew_global: Option<f64>,
    /// Worst neighbor skew so far.
    pub skew_local: Option<f64>,
    /// Watchdog verdict so far.
    pub watchdog: WatchdogStatus,
    /// Wall-clock milliseconds since the run started (0 in deterministic
    /// mode).
    pub wall_ms: f64,
    /// Wall-clock event rate since the previous beat (0 in deterministic
    /// mode).
    pub events_per_sec: f64,
    /// Parallel aggregates (`summary` records only).
    pub par: Option<ParStats>,
}

/// A parsed `sweep` record.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBeat {
    /// Beat index within the stream, starting at 0.
    pub seq: u64,
    /// Jobs completed so far.
    pub jobs_done: u64,
    /// Total jobs in the sweep.
    pub jobs_total: u64,
    /// Events simulated across completed jobs.
    pub events: u64,
    /// Wall-clock milliseconds since the sweep started (0 in deterministic
    /// mode).
    pub wall_ms: f64,
    /// Identifier of the last completed job.
    pub job: String,
    /// Owning session, for daemon-hosted sweeps (`gcs serve` stamps the
    /// submitting session so multiplexed heartbeat streams stay
    /// attributable). Absent for plain `gcs sweep` runs.
    pub session: Option<String>,
}

/// Streams `gcs-heartbeat/v1` records to a writer, pacing run beats by
/// simulated time.
#[derive(Debug)]
pub struct HeartbeatEmitter<W: Write> {
    out: W,
    every: f64,
    next_due: f64,
    deterministic: bool,
    started: Instant,
    seq: u64,
    last_events: u64,
    last_wall_s: f64,
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

fn push_opt(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl<W: Write> HeartbeatEmitter<W> {
    /// Creates an emitter whose first beat is due at `start + every`.
    ///
    /// # Panics
    ///
    /// Panics if `every` is not strictly positive and finite.
    pub fn new(out: W, every: f64, start: f64, deterministic: bool) -> Self {
        assert!(
            every > 0.0 && every.is_finite(),
            "invalid heartbeat cadence {every}"
        );
        HeartbeatEmitter {
            out,
            every,
            next_due: start + every,
            deterministic,
            started: Instant::now(),
            seq: 0,
            last_events: 0,
            last_wall_s: 0.0,
        }
    }

    /// Whether a run beat is due at simulated time `t`.
    pub fn due(&self, t: f64) -> bool {
        t >= self.next_due
    }

    /// Emits one `beat` record and advances the cadence past `input.t`.
    pub fn beat(&mut self, input: &BeatInput) -> io::Result<()> {
        while self.next_due <= input.t {
            self.next_due += self.every;
        }
        self.write_run(input, "beat", None)
    }

    /// Emits the final `summary` record. Ends the stream; cadence no longer
    /// matters.
    pub fn summary(&mut self, input: &BeatInput, par: Option<&ParStats>) -> io::Result<()> {
        self.write_run(input, "summary", par)
    }

    /// Emits one `sweep` record (call after each completed job).
    pub fn sweep_beat(
        &mut self,
        jobs_done: u64,
        jobs_total: u64,
        events: u64,
        job: &str,
    ) -> io::Result<()> {
        self.sweep_beat_session(jobs_done, jobs_total, events, job, None)
    }

    /// Like [`HeartbeatEmitter::sweep_beat`], additionally stamping the
    /// owning session — the daemon-side variant, where one process emits
    /// beats on behalf of many clients.
    pub fn sweep_beat_session(
        &mut self,
        jobs_done: u64,
        jobs_total: u64,
        events: u64,
        job: &str,
        session: Option<&str>,
    ) -> io::Result<()> {
        let wall_ms = if self.deterministic {
            0.0
        } else {
            self.started.elapsed().as_secs_f64() * 1e3
        };
        let mut line = format!(
            "{{\"schema\":\"{SCHEMA}\",\"kind\":\"sweep\",\"seq\":{},\"jobs_done\":{jobs_done},\
             \"jobs_total\":{jobs_total},\"events\":{events},\"wall_ms\":",
            self.seq
        );
        push_f64(&mut line, wall_ms);
        line.push_str(",\"job\":\"");
        push_escaped(&mut line, job);
        line.push('"');
        if let Some(session) = session {
            line.push_str(",\"session\":\"");
            push_escaped(&mut line, session);
            line.push('"');
        }
        line.push_str("}\n");
        self.seq += 1;
        self.out.write_all(line.as_bytes())?;
        self.out.flush()
    }

    fn write_run(
        &mut self,
        input: &BeatInput,
        kind: &str,
        par: Option<&ParStats>,
    ) -> io::Result<()> {
        let (wall_ms, rate) = if self.deterministic {
            (0.0, 0.0)
        } else {
            let wall_s = self.started.elapsed().as_secs_f64();
            let dt = wall_s - self.last_wall_s;
            let de = input.events.saturating_sub(self.last_events);
            let rate = if dt > 0.0 { de as f64 / dt } else { 0.0 };
            self.last_wall_s = wall_s;
            (wall_s * 1e3, rate)
        };
        self.last_events = input.events;
        let mut line = format!(
            "{{\"schema\":\"{SCHEMA}\",\"kind\":\"{kind}\",\"seq\":{},\"t\":",
            self.seq
        );
        push_f64(&mut line, input.t);
        line.push_str(&format!(
            ",\"events\":{},\"queue_depth\":{},\"timers_armed\":{},\"dropped_model\":{},\
             \"dropped_faults\":{},\"skew_global\":",
            input.events,
            input.queue_depth,
            input.timers_armed,
            input.dropped_model,
            input.dropped_faults
        ));
        push_opt(&mut line, input.skew_global);
        line.push_str(",\"skew_local\":");
        push_opt(&mut line, input.skew_local);
        line.push_str(&format!(
            ",\"watchdog\":\"{}\",\"wall_ms\":",
            input.watchdog.as_str()
        ));
        push_f64(&mut line, wall_ms);
        line.push_str(",\"events_per_sec\":");
        push_f64(&mut line, rate);
        if let Some(p) = par {
            line.push_str(&format!(
                ",\"threads\":{},\"par_windows\":{},\"replay_share\":",
                p.threads, p.windows
            ));
            push_f64(&mut line, p.replay_share);
            line.push_str(",\"idle_share\":");
            push_f64(&mut line, p.idle_share);
        }
        line.push_str("}\n");
        self.seq += 1;
        self.out.write_all(line.as_bytes())?;
        self.out.flush()
    }

    /// Consumes the emitter, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(t: f64, events: u64) -> BeatInput {
        BeatInput {
            t,
            events,
            queue_depth: 5,
            timers_armed: 2,
            dropped_model: 1,
            dropped_faults: 3,
            skew_global: Some(0.25),
            skew_local: None,
            watchdog: WatchdogStatus::Ok,
        }
    }

    #[test]
    fn cadence_paces_by_simulated_time() {
        let mut e = HeartbeatEmitter::new(Vec::new(), 2.0, 0.0, true);
        assert!(!e.due(1.9));
        assert!(e.due(2.0));
        e.beat(&input(2.5, 10)).unwrap();
        // The cadence advances past the beat time, skipping missed slots.
        assert!(!e.due(3.9));
        assert!(e.due(4.0));
        e.beat(&input(9.0, 20)).unwrap();
        assert!(!e.due(9.5));
        assert!(e.due(10.0));
    }

    #[test]
    fn deterministic_beats_are_reproducible() {
        let run = || {
            let mut e = HeartbeatEmitter::new(Vec::new(), 1.0, 0.0, true);
            e.beat(&input(1.0, 10)).unwrap();
            e.beat(&input(2.0, 30)).unwrap();
            e.summary(
                &input(3.0, 40),
                Some(&ParStats {
                    threads: 4,
                    windows: 7,
                    replay_share: 0.125,
                    idle_share: 0.5,
                }),
            )
            .unwrap();
            String::from_utf8(e.into_inner()).unwrap()
        };
        let a = run();
        assert_eq!(a, run(), "deterministic streams must be byte-identical");
        assert!(a.contains("\"wall_ms\":0"));
        assert!(a.contains("\"events_per_sec\":0"));
        assert!(a.contains("\"kind\":\"summary\""));
        assert!(a.contains("\"dropped_model\":1,\"dropped_faults\":3"));
        assert!(a.contains("\"threads\":4"));
        for line in a.lines() {
            gcs_forensics::parse_json(line).expect("every heartbeat line is valid JSON");
        }
    }

    #[test]
    fn sweep_beats_escape_job_labels() {
        let mut e = HeartbeatEmitter::new(Vec::new(), 1.0, 0.0, true);
        e.sweep_beat(1, 4, 100, "eps=\"0.1\"\n").unwrap();
        let text = String::from_utf8(e.into_inner()).unwrap();
        let parsed = gcs_forensics::parse_json(text.trim()).unwrap();
        assert_eq!(
            parsed.get("job").and_then(gcs_forensics::Json::as_str),
            Some("eps=\"0.1\"\n")
        );
    }
}
