//! Live observability for runs and sweeps: streaming `gcs-heartbeat/v1`
//! JSONL heartbeats and the `gcs top` status renderer.
//!
//! The emitting side ([`HeartbeatEmitter`]) is deliberately decoupled from
//! the engine: callers snapshot whatever state they own into a
//! [`BeatInput`] whenever a beat is [`due`](HeartbeatEmitter::due). Beats
//! are paced by **simulated** time, so the beat sequence is a pure function
//! of the execution — identical across thread counts and repeated seeded
//! runs. Only the wall-clock fields (`wall_ms`, `events_per_sec`) vary
//! between runs, and those are zeroed in deterministic mode (the
//! `--deterministic-heartbeat` flag), making the whole stream
//! byte-reproducible for tests.
//!
//! The reading side ([`parse_stream`], [`render_top`]) is tolerant: foreign
//! or malformed lines are counted and skipped, never fatal — `gcs top` must
//! be able to tail a stream that is still being written.

mod heartbeat;
mod skewfield;
mod top;

pub use heartbeat::{
    BeatInput, HeartbeatEmitter, ParStats, RunBeat, SweepBeat, WatchdogStatus, SCHEMA,
};
pub use skewfield::{SkewFieldWriter, SkewSummary, SkewWindow, SCHEMA as SKEWFIELD_SCHEMA};
pub use top::{parse_stream, render_top, Record};
