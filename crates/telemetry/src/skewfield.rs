//! The streaming **skew-field** layer: windowed per-edge local-skew
//! aggregates as `gcs-skewfield/v1` JSONL.
//!
//! A skew *field* is the map `edge ↦ |L_a − L_b|` — the quantity the
//! paper's gradient property (Theorem 5.10) bounds. The writer consumes the
//! engine's post-event clock snapshots (the same `SnapReplay`-reconstructed
//! snapshots the parallel driver feeds every snapshot consumer, so the
//! stream is byte-identical at any `--threads` count), tracks each edge's
//! worst skew within fixed simulated-time windows, and emits one `window`
//! record per closed window plus a final `summary`:
//!
//! ```json
//! {"schema":"gcs-skewfield/v1","kind":"window","seq":0,"t0":0,"t1":5,
//!  "samples":812,"edges":7,"max":0.31,"max_edge":[2,3],"p99":0.31,"mean":0.12}
//! {"schema":"gcs-skewfield/v1","kind":"summary","windows":8,"samples":6496,
//!  "worst":0.42,"worst_edge":[2,3],"worst_t":31.25}
//! ```
//!
//! `max`/`p99`/`mean` aggregate over the *per-edge window maxima* (not raw
//! samples), so a window line answers "how bad was the worst edge, and how
//! bad was the typical edge, during this slice of the run". All statistics
//! are exact and deterministic — no wall-clock fields at all.

use std::io::{self, Write};

/// The schema tag stamped on every record.
pub const SCHEMA: &str = "gcs-skewfield/v1";

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

/// Streams `gcs-skewfield/v1` records to a writer.
#[derive(Debug)]
pub struct SkewFieldWriter<W: Write> {
    out: W,
    /// Undirected edges as `(a, b)` node-index pairs.
    edges: Vec<(usize, usize)>,
    window: f64,
    window_start: f64,
    seq: u64,
    /// Per-edge worst `|L_a − L_b|` within the open window.
    edge_max: Vec<f64>,
    samples: u64,
    total_samples: u64,
    worst: f64,
    worst_edge: (usize, usize),
    worst_t: f64,
    /// Scratch buffer for the window quantile sort.
    scratch: Vec<f64>,
}

impl<W: Write> SkewFieldWriter<W> {
    /// Creates a writer over the given undirected edge list, closing one
    /// window every `window` units of simulated time starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not strictly positive and finite, or if
    /// `edges` is empty (a skew field needs at least one edge).
    pub fn new(out: W, edges: Vec<(usize, usize)>, window: f64, start: f64) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "invalid skew-field window {window}"
        );
        assert!(!edges.is_empty(), "skew field needs at least one edge");
        let n = edges.len();
        SkewFieldWriter {
            out,
            edges,
            window,
            window_start: start,
            seq: 0,
            edge_max: vec![0.0; n],
            samples: 0,
            total_samples: 0,
            worst: 0.0,
            worst_edge: (0, 0),
            worst_t: start,
            scratch: Vec::with_capacity(n),
        }
    }

    /// Observes one post-event clock snapshot. Closes (and emits) any
    /// windows that `t` has moved past before folding the snapshot in.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors from window emission.
    pub fn observe(&mut self, t: f64, clocks: &[f64]) -> io::Result<()> {
        while t >= self.window_start + self.window {
            self.close_window()?;
        }
        self.samples += 1;
        self.total_samples += 1;
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            let skew = (clocks[a] - clocks[b]).abs();
            if skew > self.edge_max[i] {
                self.edge_max[i] = skew;
            }
            if skew > self.worst {
                self.worst = skew;
                self.worst_edge = (a, b);
                self.worst_t = t;
            }
        }
        Ok(())
    }

    /// Closes the still-open window (if it saw any samples) and emits the
    /// final `summary` record. Consumes the writer and returns the
    /// underlying output.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        if self.samples > 0 {
            self.close_window()?;
        }
        let mut line = format!(
            "{{\"schema\":\"{SCHEMA}\",\"kind\":\"summary\",\"windows\":{},\"samples\":{},\
             \"worst\":",
            self.seq, self.total_samples
        );
        push_f64(&mut line, self.worst);
        line.push_str(&format!(
            ",\"worst_edge\":[{},{}],\"worst_t\":",
            self.worst_edge.0, self.worst_edge.1
        ));
        push_f64(&mut line, self.worst_t);
        line.push_str("}\n");
        self.out.write_all(line.as_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }

    fn close_window(&mut self) -> io::Result<()> {
        let t0 = self.window_start;
        let t1 = t0 + self.window;
        self.window_start = t1;
        if self.samples == 0 {
            // Nothing observed in this slice (e.g. the first snapshot
            // arrived windows later): emit nothing, keep the cadence.
            return Ok(());
        }
        let mut max = 0.0f64;
        let mut max_edge = self.edges[0];
        let mut sum = 0.0;
        for (i, &m) in self.edge_max.iter().enumerate() {
            sum += m;
            if m > max {
                max = m;
                max_edge = self.edges[i];
            }
        }
        let mean = sum / self.edge_max.len() as f64;
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.edge_max);
        self.scratch.sort_unstable_by(f64::total_cmp);
        // Nearest-rank p99 over the per-edge maxima.
        let rank = ((0.99 * self.scratch.len() as f64).ceil() as usize).max(1);
        let p99 = self.scratch[rank - 1];

        let mut line = format!(
            "{{\"schema\":\"{SCHEMA}\",\"kind\":\"window\",\"seq\":{},\"t0\":",
            self.seq
        );
        push_f64(&mut line, t0);
        line.push_str(",\"t1\":");
        push_f64(&mut line, t1);
        line.push_str(&format!(
            ",\"samples\":{},\"edges\":{},\"max\":",
            self.samples,
            self.edges.len()
        ));
        push_f64(&mut line, max);
        line.push_str(&format!(
            ",\"max_edge\":[{},{}],\"p99\":",
            max_edge.0, max_edge.1
        ));
        push_f64(&mut line, p99);
        line.push_str(",\"mean\":");
        push_f64(&mut line, mean);
        line.push_str("}\n");
        self.seq += 1;
        self.samples = 0;
        self.edge_max.fill(0.0);
        self.out.write_all(line.as_bytes())?;
        self.out.flush()
    }
}

/// A parsed `window` record.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewWindow {
    /// Window index within the stream, starting at 0.
    pub seq: u64,
    /// Window start (simulated time, inclusive).
    pub t0: f64,
    /// Window end (simulated time, exclusive).
    pub t1: f64,
    /// Clock snapshots folded into the window.
    pub samples: u64,
    /// Edges in the field.
    pub edges: u64,
    /// Worst per-edge skew in the window.
    pub max: f64,
    /// The edge that attained `max`.
    pub max_edge: (usize, usize),
    /// Nearest-rank p99 over the per-edge window maxima.
    pub p99: f64,
    /// Mean of the per-edge window maxima.
    pub mean: f64,
}

/// A parsed `summary` record.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewSummary {
    /// Windows emitted.
    pub windows: u64,
    /// Snapshots observed over the whole run.
    pub samples: u64,
    /// Worst skew over the whole run.
    pub worst: f64,
    /// The edge that attained `worst`.
    pub worst_edge: (usize, usize),
    /// Simulated time at which `worst` was first attained.
    pub worst_t: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_aggregate_per_edge_maxima() {
        let edges = vec![(0, 1), (1, 2)];
        let mut w = SkewFieldWriter::new(Vec::new(), edges, 1.0, 0.0);
        w.observe(0.25, &[0.0, 0.1, 0.1]).unwrap(); // edge (0,1): 0.1
        w.observe(0.75, &[0.0, 0.05, 0.35]).unwrap(); // edge (1,2): 0.3
        w.observe(1.5, &[0.0, 0.02, 0.04]).unwrap(); // second window
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "two windows + summary: {text}");
        assert!(lines[0].contains("\"kind\":\"window\""));
        assert!(lines[0].contains("\"t0\":0,\"t1\":1"));
        assert!(lines[0].contains("\"max\":0.3"));
        assert!(lines[0].contains("\"max_edge\":[1,2]"));
        assert!(lines[2].contains("\"kind\":\"summary\""));
        assert!(lines[2].contains("\"worst\":0.3"));
        assert!(lines[2].contains("\"worst_t\":0.75"));
    }

    #[test]
    fn empty_windows_are_skipped_but_cadence_holds() {
        let mut w = SkewFieldWriter::new(Vec::new(), vec![(0, 1)], 1.0, 0.0);
        w.observe(5.5, &[0.0, 0.25]).unwrap(); // five empty windows skipped
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"t0\":5,\"t1\":6"), "{text}");
    }

    #[test]
    fn stream_is_deterministic() {
        let run = || {
            let mut w = SkewFieldWriter::new(Vec::new(), vec![(0, 1), (1, 2)], 0.5, 0.0);
            for i in 0..40 {
                let t = i as f64 * 0.1;
                w.observe(t, &[0.0, (t * 0.7).sin() * 0.1, 0.05]).unwrap();
            }
            String::from_utf8(w.finish().unwrap()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn records_are_valid_json() {
        let mut w = SkewFieldWriter::new(Vec::new(), vec![(0, 1)], 1.0, 0.0);
        w.observe(0.5, &[0.0, 0.125]).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        for line in text.lines() {
            gcs_forensics::parse_json(line).expect("valid JSON");
        }
    }
}
