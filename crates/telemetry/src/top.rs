//! Reading side of the heartbeat stream: tolerant JSONL parsing and the
//! `gcs top` status rendering.

use gcs_forensics::{parse_json, Json};

use crate::heartbeat::{ParStats, RunBeat, SweepBeat, WatchdogStatus, SCHEMA};
use crate::skewfield::{SkewSummary, SkewWindow, SCHEMA as SKEWFIELD_SCHEMA};

/// One parsed heartbeat record of either flavor.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A `beat` or `summary` run record.
    Run(RunBeat),
    /// A `sweep` progress record.
    Sweep(SweepBeat),
    /// A `gcs-skewfield/v1` window record.
    SkewWindow(SkewWindow),
    /// A `gcs-skewfield/v1` summary record.
    SkewSummary(SkewSummary),
}

fn num(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

fn int(v: &Json, key: &str) -> Option<u64> {
    num(v, key).map(|f| f as u64)
}

fn opt_num(v: &Json, key: &str) -> Option<f64> {
    match v.get(key) {
        Some(Json::Null) | None => None,
        Some(j) => j.as_f64(),
    }
}

fn edge(v: &Json, key: &str) -> Option<(usize, usize)> {
    let arr = v.get(key)?.as_arr().filter(|a| a.len() == 2)?;
    let idx = |j: &Json| j.as_f64().filter(|f| *f >= 0.0 && f.fract() == 0.0);
    Some((idx(&arr[0])? as usize, idx(&arr[1])? as usize))
}

fn parse_skewfield(v: &Json) -> Option<Record> {
    match v.get("kind").and_then(Json::as_str)? {
        "window" => Some(Record::SkewWindow(SkewWindow {
            seq: int(v, "seq")?,
            t0: num(v, "t0")?,
            t1: num(v, "t1")?,
            samples: int(v, "samples")?,
            edges: int(v, "edges")?,
            max: num(v, "max")?,
            max_edge: edge(v, "max_edge")?,
            p99: num(v, "p99")?,
            mean: num(v, "mean")?,
        })),
        "summary" => Some(Record::SkewSummary(SkewSummary {
            windows: int(v, "windows")?,
            samples: int(v, "samples")?,
            worst: num(v, "worst")?,
            worst_edge: edge(v, "worst_edge")?,
            worst_t: num(v, "worst_t")?,
        })),
        _ => None,
    }
}

fn parse_line(line: &str) -> Option<Record> {
    let v = parse_json(line).ok()?;
    match v.get("schema").and_then(Json::as_str) {
        Some(s) if s == SKEWFIELD_SCHEMA => return parse_skewfield(&v),
        Some(s) if s == SCHEMA => {}
        _ => return None,
    }
    match v.get("kind").and_then(Json::as_str)? {
        "sweep" => Some(Record::Sweep(SweepBeat {
            seq: int(&v, "seq")?,
            jobs_done: int(&v, "jobs_done")?,
            jobs_total: int(&v, "jobs_total")?,
            events: int(&v, "events")?,
            wall_ms: num(&v, "wall_ms").unwrap_or(0.0),
            job: v.get("job").and_then(Json::as_str)?.to_string(),
            session: v.get("session").and_then(Json::as_str).map(str::to_string),
        })),
        kind @ ("beat" | "summary") => {
            let par = int(&v, "threads").map(|threads| ParStats {
                threads,
                windows: int(&v, "par_windows").unwrap_or(0),
                replay_share: num(&v, "replay_share").unwrap_or(0.0),
                idle_share: num(&v, "idle_share").unwrap_or(0.0),
            });
            Some(Record::Run(RunBeat {
                summary: kind == "summary",
                seq: int(&v, "seq")?,
                t: num(&v, "t")?,
                events: int(&v, "events")?,
                queue_depth: int(&v, "queue_depth")?,
                timers_armed: int(&v, "timers_armed")?,
                // Absent in pre-split streams; default to 0 so old files
                // still render.
                dropped_model: int(&v, "dropped_model").unwrap_or(0),
                dropped_faults: int(&v, "dropped_faults").unwrap_or(0),
                skew_global: opt_num(&v, "skew_global"),
                skew_local: opt_num(&v, "skew_local"),
                watchdog: WatchdogStatus::parse(v.get("watchdog").and_then(Json::as_str)?)?,
                wall_ms: num(&v, "wall_ms").unwrap_or(0.0),
                events_per_sec: num(&v, "events_per_sec").unwrap_or(0.0),
                par,
            }))
        }
        _ => None,
    }
}

/// Parses a heartbeat stream line by line. Returns the recognized records
/// and the number of skipped lines (malformed, truncated mid-write, or
/// foreign schemas) — skipping is deliberate, `gcs top` tails live files.
pub fn parse_stream(text: &str) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut skipped = 0;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(r) => records.push(r),
            None => skipped += 1,
        }
    }
    (records, skipped)
}

fn fmt_skew(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.6}"),
        None => "-".to_string(),
    }
}

/// Renders a status table from a parsed stream: the most recent run beats,
/// the run/parallel summary if the stream has finished, and sweep progress.
/// Purely a function of the records, so deterministic streams render
/// deterministically.
pub fn render_top(records: &[Record], skipped: usize) -> String {
    const SHOWN: usize = 10;
    let runs: Vec<&RunBeat> = records
        .iter()
        .filter_map(|r| match r {
            Record::Run(b) => Some(b),
            _ => None,
        })
        .collect();
    let sweeps: Vec<&SweepBeat> = records
        .iter()
        .filter_map(|r| match r {
            Record::Sweep(b) => Some(b),
            _ => None,
        })
        .collect();
    let skew_windows: Vec<&SkewWindow> = records
        .iter()
        .filter_map(|r| match r {
            Record::SkewWindow(w) => Some(w),
            _ => None,
        })
        .collect();
    let skew_summary = records.iter().rev().find_map(|r| match r {
        Record::SkewSummary(s) => Some(s),
        _ => None,
    });

    let mut out = format!(
        "gcs top — {} heartbeat record(s), {} line(s) skipped\n",
        records.len(),
        skipped
    );

    if !runs.is_empty() {
        out.push_str(&format!(
            "\n{:>5} {:>12} {:>10} {:>10} {:>7} {:>7} {:>8} {:>8} {:>10} {:>10}  {}\n",
            "seq",
            "t",
            "events",
            "ev/s",
            "queue",
            "timers",
            "drop_mdl",
            "drop_flt",
            "skew_glb",
            "skew_loc",
            "watchdog"
        ));
        let tail = &runs[runs.len().saturating_sub(SHOWN)..];
        for b in tail {
            out.push_str(&format!(
                "{:>5} {:>12.4} {:>10} {:>10.0} {:>7} {:>7} {:>8} {:>8} {:>10} {:>10}  {}{}\n",
                b.seq,
                b.t,
                b.events,
                b.events_per_sec,
                b.queue_depth,
                b.timers_armed,
                b.dropped_model,
                b.dropped_faults,
                fmt_skew(b.skew_global),
                fmt_skew(b.skew_local),
                match b.watchdog {
                    WatchdogStatus::Off => "off",
                    WatchdogStatus::Ok => "ok",
                    WatchdogStatus::Tripped => "TRIPPED",
                },
                if b.summary { "  (summary)" } else { "" },
            ));
        }
        if runs.len() > SHOWN {
            out.push_str(&format!(
                "({} earlier beat(s) not shown)\n",
                runs.len() - SHOWN
            ));
        }
        let last = runs[runs.len() - 1];
        out.push_str(&format!(
            "\nrun: t {}  events {}  queue {}  dropped {}+{}  watchdog {}\n",
            last.t,
            last.events,
            last.queue_depth,
            last.dropped_model,
            last.dropped_faults,
            last.watchdog_str(),
        ));
        if let Some(p) = runs.iter().rev().find_map(|b| b.par.as_ref()) {
            out.push_str(&format!(
                "parallel: threads {}  windows {}  replay {:.1}%  idle {:.1}%\n",
                p.threads,
                p.windows,
                p.replay_share * 100.0,
                p.idle_share * 100.0
            ));
        }
    }

    if !skew_windows.is_empty() || skew_summary.is_some() {
        out.push_str(&format!(
            "\n{:>5} {:>10} {:>10} {:>10} {:>10} {:>10}  {}\n",
            "win", "t0", "t1", "max", "p99", "mean", "max_edge"
        ));
        let tail = &skew_windows[skew_windows.len().saturating_sub(SHOWN)..];
        for w in tail {
            out.push_str(&format!(
                "{:>5} {:>10.4} {:>10.4} {:>10.6} {:>10.6} {:>10.6}  {}-{}\n",
                w.seq, w.t0, w.t1, w.max, w.p99, w.mean, w.max_edge.0, w.max_edge.1
            ));
        }
        if skew_windows.len() > SHOWN {
            out.push_str(&format!(
                "({} earlier window(s) not shown)\n",
                skew_windows.len() - SHOWN
            ));
        }
        if let Some(s) = skew_summary {
            out.push_str(&format!(
                "skew-field: {} window(s)  worst {:.6} on edge {}-{} at t {:.4}\n",
                s.windows, s.worst, s.worst_edge.0, s.worst_edge.1, s.worst_t
            ));
        }
    }

    if let Some(last) = sweeps.last() {
        let events: u64 = last.events;
        out.push_str(&format!(
            "\nsweep: {}/{} job(s) done  events {}  last job \"{}\"\n",
            last.jobs_done, last.jobs_total, events, last.job
        ));
    }

    if runs.is_empty() && sweeps.is_empty() && skew_windows.is_empty() && skew_summary.is_none() {
        out.push_str("(no heartbeat records found)\n");
    }
    out
}

impl RunBeat {
    fn watchdog_str(&self) -> &'static str {
        match self.watchdog {
            WatchdogStatus::Off => "off",
            WatchdogStatus::Ok => "ok",
            WatchdogStatus::Tripped => "TRIPPED",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heartbeat::{BeatInput, HeartbeatEmitter};

    fn emitted_stream() -> String {
        let mut e = HeartbeatEmitter::new(Vec::new(), 1.0, 0.0, true);
        for i in 1..=12u64 {
            e.beat(&BeatInput {
                t: i as f64,
                events: i * 100,
                queue_depth: 8,
                timers_armed: 3,
                dropped_model: 2,
                dropped_faults: i,
                skew_global: Some(0.125 * i as f64),
                skew_local: Some(0.01),
                watchdog: WatchdogStatus::Ok,
            })
            .unwrap();
        }
        e.summary(
            &BeatInput {
                t: 13.0,
                events: 1300,
                queue_depth: 0,
                timers_armed: 0,
                dropped_model: 2,
                dropped_faults: 12,
                skew_global: Some(1.5),
                skew_local: Some(0.01),
                watchdog: WatchdogStatus::Ok,
            },
            Some(&ParStats {
                threads: 4,
                windows: 20,
                replay_share: 0.25,
                idle_share: 0.75,
            }),
        )
        .unwrap();
        e.sweep_beat(3, 9, 5000, "eps=0.05").unwrap();
        String::from_utf8(e.into_inner()).unwrap()
    }

    #[test]
    fn parses_own_stream_round_trip() {
        let text = emitted_stream();
        let (records, skipped) = parse_stream(&text);
        assert_eq!(skipped, 0, "own stream must parse fully");
        assert_eq!(records.len(), 14);
        let Record::Run(last_run) = &records[12] else {
            panic!("record 12 should be the summary");
        };
        assert!(last_run.summary);
        assert_eq!(last_run.events, 1300);
        assert_eq!(
            (last_run.dropped_model, last_run.dropped_faults),
            (2, 12),
            "per-cause drop split survives the round trip"
        );
        assert_eq!(last_run.par.as_ref().map(|p| p.threads), Some(4));
        let Record::Sweep(sweep) = &records[13] else {
            panic!("record 13 should be the sweep beat");
        };
        assert_eq!((sweep.jobs_done, sweep.jobs_total), (3, 9));
    }

    #[test]
    fn foreign_and_torn_lines_are_skipped_not_fatal() {
        let mut text = String::from("{\"schema\":\"other/v9\",\"x\":1}\nnot json at all\n");
        text.push_str(&emitted_stream());
        text.push_str("{\"schema\":\"gcs-heartbeat/v1\",\"kind\":\"beat\",\"seq\":99,\"t\":"); // torn
        let (records, skipped) = parse_stream(&text);
        assert_eq!(records.len(), 14);
        assert_eq!(skipped, 3);
    }

    #[test]
    fn render_shows_status_and_caps_rows() {
        let (records, skipped) = parse_stream(&emitted_stream());
        let text = render_top(&records, skipped);
        assert!(text.contains("14 heartbeat record(s)"));
        assert!(text.contains("watchdog ok"));
        assert!(text.contains("(summary)"));
        assert!(text.contains("dropped 2+12"));
        assert!(text.contains("parallel: threads 4  windows 20  replay 25.0%  idle 75.0%"));
        assert!(text.contains("sweep: 3/9 job(s) done"));
        assert!(text.contains("earlier beat(s) not shown"));
        assert_eq!(
            text,
            render_top(&records, skipped),
            "rendering is deterministic"
        );
    }

    #[test]
    fn skewfield_records_parse_and_render() {
        use crate::skewfield::SkewFieldWriter;
        let mut w = SkewFieldWriter::new(Vec::new(), vec![(0, 1), (1, 2)], 1.0, 0.0);
        w.observe(0.5, &[0.0, 0.25, 0.3]).unwrap();
        w.observe(1.5, &[0.0, 0.1, 0.15]).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let (records, skipped) = parse_stream(&text);
        assert_eq!(skipped, 0, "own skew-field stream must parse fully");
        assert_eq!(records.len(), 3);
        assert!(matches!(records[0], Record::SkewWindow(_)));
        assert!(matches!(records[2], Record::SkewSummary(_)));
        let rendered = render_top(&records, skipped);
        assert!(rendered.contains("max_edge"), "{rendered}");
        assert!(rendered.contains("skew-field: 2 window(s)"), "{rendered}");
        assert!(
            rendered.contains("worst 0.250000 on edge 0-1"),
            "{rendered}"
        );
    }

    #[test]
    fn pre_split_heartbeats_still_parse_with_zero_drops() {
        // A beat written before the per-cause drop split existed.
        let line = "{\"schema\":\"gcs-heartbeat/v1\",\"kind\":\"beat\",\"seq\":0,\
                    \"t\":1,\"events\":10,\"queue_depth\":2,\"timers_armed\":1,\
                    \"skew_global\":null,\"skew_local\":null,\"watchdog\":\"off\",\
                    \"wall_ms\":0,\"events_per_sec\":0}";
        let (records, skipped) = parse_stream(line);
        assert_eq!(skipped, 0);
        let Record::Run(b) = &records[0] else {
            panic!("expected run beat");
        };
        assert_eq!((b.dropped_model, b.dropped_faults), (0, 0));
    }

    #[test]
    fn empty_stream_renders_placeholder() {
        let (records, skipped) = parse_stream("");
        let text = render_top(&records, skipped);
        assert!(text.contains("(no heartbeat records found)"));
    }
}
