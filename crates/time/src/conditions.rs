//! Checkers for the paper's correctness conditions on logical clocks.
//!
//! Condition (1) (the *affine linear envelope* of real time):
//! `(1 − ε)(t − t_v) ≤ L_v(t) ≤ (1 + ε) t` for all `t`.
//!
//! Condition (2) (bounded progress): there are constants
//! `0 < α ≤ 1 − ε` and `β ≥ 1 + ε` with
//! `α (t' − t) ≤ L_v(t') − L_v(t) ≤ β (t' − t)` for all `t' ≥ t ≥ t_v`.

use crate::DriftBounds;

/// The admissible logical-clock progress-rate interval `[α, β]` of the
/// paper's Condition (2).
///
/// For `A^opt`, Corollary 5.3 gives `α = 1 − ε` and `β = (1 + ε)(1 + μ)`.
///
/// # Example
///
/// ```
/// use gcs_time::{DriftBounds, RateEnvelope};
///
/// let eps = DriftBounds::new(1e-3)?;
/// let env = RateEnvelope::for_a_opt(eps, 14.0 * 1e-3);
/// assert!(env.alpha() <= 1.0 - 1e-3);
/// assert!(env.beta() >= 1.0 + 1e-3);
/// # Ok::<(), gcs_time::ScheduleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEnvelope {
    alpha: f64,
    beta: f64,
}

impl RateEnvelope {
    /// Creates an envelope with explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= beta` (`beta` may be `f64::INFINITY` for
    /// jump-capable algorithms).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= beta,
            "invalid rate envelope [{alpha}, {beta}]"
        );
        RateEnvelope { alpha, beta }
    }

    /// The envelope guaranteed by `A^opt` per Corollary 5.3:
    /// `α = 1 − ε`, `β = (1 + ε)(1 + μ)`.
    pub fn for_a_opt(drift: DriftBounds, mu: f64) -> Self {
        RateEnvelope::new(drift.min_rate(), drift.max_rate() * (1.0 + mu))
    }

    /// Minimum progress rate `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Maximum progress rate `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The base `b = ⌈2(β − α)/(αε)⌉` of the local-skew lower bound of
    /// Theorem 7.7.
    pub fn lower_bound_base(&self, drift: DriftBounds) -> f64 {
        ((2.0 * (self.beta - self.alpha)) / (self.alpha * drift.epsilon())).ceil()
    }
}

/// Streaming checker for the envelope Condition (1).
///
/// Feed it samples `(t, L_v(t))`; it verifies
/// `(1 − ε)(t − t_v) − tol ≤ L_v(t) ≤ (1 + ε) t + tol`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeChecker {
    drift: DriftBounds,
    start_time: f64,
    tolerance: f64,
    worst_low_margin: f64,
    worst_high_margin: f64,
    samples: u64,
}

impl EnvelopeChecker {
    /// Creates a checker for a node initialized at `start_time` under the
    /// given drift bounds, with absolute tolerance `tolerance` for
    /// floating-point slack.
    pub fn new(drift: DriftBounds, start_time: f64, tolerance: f64) -> Self {
        EnvelopeChecker {
            drift,
            start_time,
            tolerance,
            worst_low_margin: f64::INFINITY,
            worst_high_margin: f64::INFINITY,
            samples: 0,
        }
    }

    /// Records a sample; returns `false` if it violates the envelope.
    pub fn observe(&mut self, t: f64, logical: f64) -> bool {
        self.samples += 1;
        let low = self.drift.min_rate() * (t - self.start_time).max(0.0);
        let high = self.drift.max_rate() * t;
        let low_margin = logical - low;
        let high_margin = high - logical;
        self.worst_low_margin = self.worst_low_margin.min(low_margin);
        self.worst_high_margin = self.worst_high_margin.min(high_margin);
        low_margin >= -self.tolerance && high_margin >= -self.tolerance
    }

    /// Whether every sample so far satisfied the envelope.
    pub fn all_ok(&self) -> bool {
        self.samples == 0
            || (self.worst_low_margin >= -self.tolerance
                && self.worst_high_margin >= -self.tolerance)
    }

    /// The smallest slack observed against the lower envelope (negative
    /// means a violation).
    pub fn worst_low_margin(&self) -> f64 {
        self.worst_low_margin
    }

    /// The smallest slack observed against the upper envelope.
    pub fn worst_high_margin(&self) -> f64 {
        self.worst_high_margin
    }

    /// Number of samples observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Streaming checker for the progress Condition (2).
///
/// Feed it successive samples `(t, L_v(t))` of one node's logical clock; it
/// verifies `α(t' − t) − tol ≤ L(t') − L(t) ≤ β(t' − t) + tol` for each
/// consecutive pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressChecker {
    envelope: RateEnvelope,
    tolerance: f64,
    last: Option<(f64, f64)>,
    worst_min_margin: f64,
    worst_max_margin: f64,
    violations: u64,
}

impl ProgressChecker {
    /// Creates a checker for the given envelope with absolute tolerance
    /// `tolerance` per interval.
    pub fn new(envelope: RateEnvelope, tolerance: f64) -> Self {
        ProgressChecker {
            envelope,
            tolerance,
            last: None,
            worst_min_margin: f64::INFINITY,
            worst_max_margin: f64::INFINITY,
            violations: 0,
        }
    }

    /// Records the next sample; returns `false` if the increment from the
    /// previous sample violates the envelope.
    ///
    /// # Panics
    ///
    /// Panics if samples go backwards in time.
    pub fn observe(&mut self, t: f64, logical: f64) -> bool {
        let ok = if let Some((t0, l0)) = self.last {
            assert!(t >= t0, "progress samples must be time-ordered");
            let dt = t - t0;
            let dl = logical - l0;
            let min_margin = dl - self.envelope.alpha() * dt;
            let max_margin = if self.envelope.beta().is_finite() {
                self.envelope.beta() * dt - dl
            } else {
                f64::INFINITY
            };
            self.worst_min_margin = self.worst_min_margin.min(min_margin);
            self.worst_max_margin = self.worst_max_margin.min(max_margin);
            let ok = min_margin >= -self.tolerance && max_margin >= -self.tolerance;
            if !ok {
                self.violations += 1;
            }
            ok
        } else {
            true
        };
        self.last = Some((t, logical));
        ok
    }

    /// Whether every increment so far satisfied the envelope.
    pub fn all_ok(&self) -> bool {
        self.violations == 0
    }

    /// The smallest slack observed against the minimum progress rate.
    pub fn worst_min_margin(&self) -> f64 {
        self.worst_min_margin
    }

    /// The smallest slack observed against the maximum progress rate.
    pub fn worst_max_margin(&self) -> f64 {
        self.worst_max_margin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drift() -> DriftBounds {
        DriftBounds::new(0.1).unwrap()
    }

    #[test]
    fn envelope_accepts_perfect_clock() {
        let mut c = EnvelopeChecker::new(drift(), 0.0, 1e-9);
        for i in 0..100 {
            let t = i as f64;
            assert!(c.observe(t, t));
        }
        assert!(c.all_ok());
    }

    #[test]
    fn envelope_rejects_too_fast_clock() {
        let mut c = EnvelopeChecker::new(drift(), 0.0, 1e-9);
        assert!(!c.observe(10.0, 11.5)); // above (1+ε)t = 11
        assert!(!c.all_ok());
        assert!(c.worst_high_margin() < 0.0);
    }

    #[test]
    fn envelope_rejects_too_slow_clock() {
        let mut c = EnvelopeChecker::new(drift(), 0.0, 1e-9);
        assert!(!c.observe(10.0, 8.5)); // below (1-ε)t = 9
        assert!(c.worst_low_margin() < 0.0);
    }

    #[test]
    fn envelope_accounts_for_late_start() {
        let mut c = EnvelopeChecker::new(drift(), 5.0, 1e-9);
        // At t = 10 a node started at 5 must only reach 0.9 * 5 = 4.5.
        assert!(c.observe(10.0, 4.6));
        assert!(c.all_ok());
    }

    #[test]
    fn progress_accepts_within_envelope() {
        let env = RateEnvelope::new(0.9, 1.2);
        let mut c = ProgressChecker::new(env, 1e-9);
        assert!(c.observe(0.0, 0.0));
        assert!(c.observe(1.0, 1.0));
        assert!(c.observe(3.0, 3.3));
        assert!(c.all_ok());
    }

    #[test]
    fn progress_rejects_stalled_clock() {
        let env = RateEnvelope::new(0.9, 1.2);
        let mut c = ProgressChecker::new(env, 1e-9);
        c.observe(0.0, 0.0);
        assert!(!c.observe(1.0, 0.5));
        assert!(!c.all_ok());
    }

    #[test]
    fn progress_rejects_jumping_clock() {
        let env = RateEnvelope::new(0.9, 1.2);
        let mut c = ProgressChecker::new(env, 1e-9);
        c.observe(0.0, 0.0);
        assert!(!c.observe(1.0, 2.0));
    }

    #[test]
    fn infinite_beta_permits_jumps() {
        let env = RateEnvelope::new(0.9, f64::INFINITY);
        let mut c = ProgressChecker::new(env, 1e-9);
        c.observe(0.0, 0.0);
        assert!(c.observe(1.0, 100.0));
        assert!(c.all_ok());
    }

    #[test]
    fn a_opt_envelope_matches_corollary_5_3() {
        let eps = DriftBounds::new(0.01).unwrap();
        let env = RateEnvelope::for_a_opt(eps, 0.14);
        assert!((env.alpha() - 0.99).abs() < 1e-12);
        assert!((env.beta() - 1.01 * 1.14).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_base_matches_theorem_7_7() {
        // b = ceil(2(β−α)/(αε))
        let eps = DriftBounds::new(0.1).unwrap();
        let env = RateEnvelope::new(1.0, 1.5);
        assert_eq!(env.lower_bound_base(eps), 10.0);
    }

    #[test]
    #[should_panic(expected = "invalid rate envelope")]
    fn envelope_rejects_reversed_bounds() {
        let _ = RateEnvelope::new(1.2, 0.9);
    }
}
