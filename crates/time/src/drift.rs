//! Drift bounds `ε` on hardware-clock rates.

use std::fmt;

use crate::ScheduleError;

/// The maximum hardware-clock drift `ε` of the paper's model: every hardware
/// clock rate satisfies `1 − ε ≤ h_v(t) ≤ 1 + ε` with `0 < ε < 1`.
///
/// The algorithm only knows an upper bound `ε̂ < 1`; both the true `ε` and
/// the known `ε̂` are represented by this type.
///
/// # Example
///
/// ```
/// let eps = gcs_time::DriftBounds::new(1e-4)?;
/// assert_eq!(eps.min_rate(), 1.0 - 1e-4);
/// assert_eq!(eps.max_rate(), 1.0 + 1e-4);
/// assert!(eps.contains(1.00005));
/// # Ok::<(), gcs_time::ScheduleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct DriftBounds {
    epsilon: f64,
}

impl DriftBounds {
    /// Creates drift bounds for a maximum relative drift `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidRate`] unless `0 < epsilon < 1`
    /// (`ε = 1` would allow clocks to stand still — the paper's Section 8.1
    /// explicitly excludes that degenerate case).
    pub fn new(epsilon: f64) -> crate::Result<Self> {
        if !(epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0) {
            return Err(ScheduleError::InvalidRate { rate: epsilon });
        }
        Ok(DriftBounds { epsilon })
    }

    /// The maximum relative drift `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The slowest admissible hardware rate, `1 − ε`.
    pub fn min_rate(&self) -> f64 {
        1.0 - self.epsilon
    }

    /// The fastest admissible hardware rate, `1 + ε`.
    pub fn max_rate(&self) -> f64 {
        1.0 + self.epsilon
    }

    /// Whether `rate` lies within `[1 − ε, 1 + ε]` (with a tiny tolerance for
    /// accumulated floating-point error).
    pub fn contains(&self, rate: f64) -> bool {
        rate >= self.min_rate() - 1e-12 && rate <= self.max_rate() + 1e-12
    }

    /// Clamps `rate` into `[1 − ε, 1 + ε]`.
    pub fn clamp(&self, rate: f64) -> f64 {
        rate.clamp(self.min_rate(), self.max_rate())
    }
}

impl fmt::Display for DriftBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε = {}", self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range_is_open_unit_interval() {
        assert!(DriftBounds::new(0.5).is_ok());
        assert!(DriftBounds::new(1e-9).is_ok());
        assert!(DriftBounds::new(0.0).is_err());
        assert!(DriftBounds::new(1.0).is_err());
        assert!(DriftBounds::new(-0.1).is_err());
        assert!(DriftBounds::new(f64::NAN).is_err());
    }

    #[test]
    fn rate_interval_matches_epsilon() {
        let b = DriftBounds::new(0.25).unwrap();
        assert_eq!(b.min_rate(), 0.75);
        assert_eq!(b.max_rate(), 1.25);
        assert!(b.contains(0.75));
        assert!(b.contains(1.25));
        assert!(!b.contains(0.74));
        assert!(!b.contains(1.26));
    }

    #[test]
    fn clamp_pins_out_of_range_rates() {
        let b = DriftBounds::new(0.1).unwrap();
        assert_eq!(b.clamp(2.0), 1.1);
        assert_eq!(b.clamp(0.0), 0.9);
        assert_eq!(b.clamp(1.0), 1.0);
    }

    #[test]
    fn display_mentions_epsilon() {
        let b = DriftBounds::new(0.001).unwrap();
        assert_eq!(format!("{b}"), "ε = 0.001");
    }
}
