//! Hardware clocks with exact forward and inverse evaluation.

/// A node's hardware clock `H_v`.
///
/// Per the paper's model, `H_v(t) = 0` until the node's initialization time
/// `t_v` and `H_v(t) = ∫_{t_v}^t h_v(τ) dτ` afterwards. The clock is advanced
/// by the simulation engine: the engine informs it of every rate change
/// (piecewise-constant rates), and between changes the clock evaluates
/// exactly.
///
/// The *inverse* lookup [`HardwareClock::time_when`] — "assuming the current
/// rate persists, at which real time does `H_v` reach value `x`?" — is the
/// primitive behind hardware-value timers: the paper's Algorithm 1 fires when
/// `L_v^max` (which advances at rate `h_v`) reaches a multiple of `H₀`, and
/// Algorithm 4 fires when `H_v` reaches `H_v^R`. When the rate changes, the
/// engine re-queries and reschedules.
///
/// # Example
///
/// ```
/// let mut hw = gcs_time::HardwareClock::new();
/// assert!(!hw.is_started());
/// hw.start(2.0, 0.5); // initialized at t = 2 running at half speed
/// assert_eq!(hw.value_at(2.0), 0.0);
/// assert_eq!(hw.value_at(6.0), 2.0);
/// assert_eq!(hw.time_when(3.0), Some(8.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareClock {
    /// `None` until the node is initialized (its `t_v`).
    anchor: Option<Anchor>,
    /// The node's initialization time `t_v`, once started.
    start_time: Option<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Anchor {
    /// Real time of the last rate change (or start).
    t: f64,
    /// Clock value at the anchor.
    h: f64,
    /// Rate in force since the anchor.
    rate: f64,
}

impl HardwareClock {
    /// A clock that has not been started: its value is 0 everywhere and it
    /// has no rate.
    pub fn new() -> Self {
        HardwareClock {
            anchor: None,
            start_time: None,
        }
    }

    /// Whether the node owning this clock has been initialized.
    pub fn is_started(&self) -> bool {
        self.anchor.is_some()
    }

    /// Starts the clock at real time `t` (the node's `t_v`) with the given
    /// initial rate.
    ///
    /// # Panics
    ///
    /// Panics if the clock is already started or `rate <= 0`.
    pub fn start(&mut self, t: f64, rate: f64) {
        assert!(self.anchor.is_none(), "hardware clock started twice");
        assert!(rate > 0.0, "hardware rate must be positive, got {rate}");
        self.anchor = Some(Anchor { t, h: 0.0, rate });
        self.start_time = Some(t);
    }

    /// Real time at which the clock started (`t_v`), if started.
    pub fn started_at(&self) -> Option<f64> {
        self.start_time
    }

    /// Changes the rate at real time `t ≥` the last anchor.
    ///
    /// # Panics
    ///
    /// Panics if the clock is unstarted, `t` precedes the current anchor, or
    /// `rate <= 0`.
    pub fn set_rate(&mut self, t: f64, rate: f64) {
        assert!(rate > 0.0, "hardware rate must be positive, got {rate}");
        let anchor = self.anchor.as_mut().expect("set_rate on unstarted clock");
        assert!(
            t >= anchor.t,
            "rate change at {t} precedes anchor {}",
            anchor.t
        );
        anchor.h += anchor.rate * (t - anchor.t);
        anchor.t = t;
        anchor.rate = rate;
    }

    /// The rate currently in force.
    ///
    /// # Panics
    ///
    /// Panics if the clock is unstarted.
    pub fn rate(&self) -> f64 {
        self.anchor.expect("rate of unstarted clock").rate
    }

    /// The clock value `H_v(t)`; zero before the start time. `t` must not
    /// precede the last rate change.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the current anchor (the engine only evaluates
    /// forward in time).
    pub fn value_at(&self, t: f64) -> f64 {
        match self.anchor {
            None => 0.0,
            Some(a) => {
                assert!(t >= a.t, "value_at({t}) precedes anchor {}", a.t);
                a.h + a.rate * (t - a.t)
            }
        }
    }

    /// Assuming the current rate persists, the real time at which the clock
    /// value reaches `target`; `None` if the clock is unstarted or the target
    /// is already reached (in which case "now" is the answer and the caller
    /// should act immediately).
    pub fn time_when(&self, target: f64) -> Option<f64> {
        let a = self.anchor?;
        if target <= a.h {
            return Some(a.t);
        }
        Some(a.t + (target - a.h) / a.rate)
    }
}

impl Default for HardwareClock {
    fn default() -> Self {
        HardwareClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unstarted_clock_reads_zero() {
        let hw = HardwareClock::new();
        assert_eq!(hw.value_at(100.0), 0.0);
        assert_eq!(hw.time_when(1.0), None);
        assert!(!hw.is_started());
    }

    #[test]
    fn value_integrates_across_rate_changes() {
        let mut hw = HardwareClock::new();
        hw.start(0.0, 1.0);
        hw.set_rate(10.0, 2.0);
        hw.set_rate(15.0, 0.5);
        // 10*1 + 5*2 + 4*0.5 = 22
        assert!((hw.value_at(19.0) - 22.0).abs() < 1e-12);
    }

    #[test]
    fn start_offset_is_respected() {
        let mut hw = HardwareClock::new();
        hw.start(5.0, 1.5);
        assert_eq!(hw.value_at(5.0), 0.0);
        assert!((hw.value_at(7.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_when_inverts_value_at() {
        let mut hw = HardwareClock::new();
        hw.start(0.0, 1.0);
        hw.set_rate(4.0, 0.25);
        let t = hw.time_when(5.0).unwrap();
        assert!((hw.value_at(t) - 5.0).abs() < 1e-12);
        assert!((t - 8.0).abs() < 1e-12);
    }

    #[test]
    fn time_when_already_reached_returns_anchor() {
        let mut hw = HardwareClock::new();
        hw.start(0.0, 1.0);
        hw.set_rate(3.0, 1.0);
        assert_eq!(hw.time_when(2.0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        let mut hw = HardwareClock::new();
        hw.start(0.0, 1.0);
        hw.start(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "precedes anchor")]
    fn backwards_rate_change_panics() {
        let mut hw = HardwareClock::new();
        hw.start(5.0, 1.0);
        hw.set_rate(4.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "precedes anchor")]
    fn backwards_evaluation_panics() {
        let mut hw = HardwareClock::new();
        hw.start(0.0, 1.0);
        hw.set_rate(5.0, 1.0);
        let _ = hw.value_at(4.0);
    }

    #[test]
    fn rate_reports_current_rate() {
        let mut hw = HardwareClock::new();
        hw.start(0.0, 1.0);
        assert_eq!(hw.rate(), 1.0);
        hw.set_rate(1.0, 1.25);
        assert_eq!(hw.rate(), 1.25);
    }
}
