//! Time, hardware-clock, and logical-clock primitives for the reproduction of
//! Lenzen, Locher & Wattenhofer, *Tight Bounds for Clock Synchronization*
//! (PODC 2009 / J. ACM 2010).
//!
//! The paper's model (its Section 3) describes every node `v` of a distributed
//! system as owning a **hardware clock** `H_v(t) = ∫ h_v(τ) dτ` whose rate
//! `h_v(t)` varies arbitrarily within `[1 − ε, 1 + ε]`, and a **logical
//! clock** `L_v` the algorithm derives from it. This crate provides those two
//! objects plus the supporting pieces:
//!
//! * [`RateSchedule`] — a validated piecewise-constant rate function, the
//!   representation used both by random drift models and by the adversarial
//!   executions of the paper's Section 7,
//! * [`HardwareClock`] — exact forward evaluation `H_v(t)` and inverse lookup
//!   ("at which real time does `H_v` reach value x?"), the primitive on which
//!   the event engine's hardware-value timers are built,
//! * [`LogicalClock`] — a clock driven at `ρ_v · h_v` for a rate multiplier
//!   `ρ_v` (the paper's Algorithm 3 switches `ρ_v` between `1` and `1 + μ`),
//! * [`DriftBounds`] and the envelope/progress condition checkers of the
//!   paper's Conditions (1) and (2).
//!
//! Real time, hardware-clock values, and logical-clock values are all plain
//! `f64` seconds. The simulation operates on exact event times, so `f64`
//! resolution (~1e-15 relative) is far below every tolerance used by the
//! bound checks.
//!
//! # Example
//!
//! ```
//! use gcs_time::{HardwareClock, RateSchedule};
//!
//! // A clock that runs 1% fast for 10s, then 1% slow.
//! let schedule = RateSchedule::from_steps(vec![(0.0, 1.01), (10.0, 0.99)])?;
//! let mut hw = HardwareClock::new();
//! hw.start(0.0, schedule.rate_at(0.0));
//! hw.set_rate(10.0, schedule.rate_at(10.0));
//! assert!((hw.value_at(20.0) - 20.0).abs() < 1e-12);
//! # Ok::<(), gcs_time::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conditions;
mod drift;
mod hardware;
mod logical;
mod rate;

pub use conditions::{EnvelopeChecker, ProgressChecker, RateEnvelope};
pub use drift::DriftBounds;
pub use hardware::HardwareClock;
pub use logical::LogicalClock;
pub use rate::{RateSchedule, ScheduleError};

/// Convenience result alias for fallible constructors in this crate.
pub type Result<T> = std::result::Result<T, ScheduleError>;
