//! Logical clocks driven at a multiple of the hardware rate.

/// A node's logical clock `L_v`, advanced at `ρ_v · h_v` where `ρ_v` is the
/// *logical clock rate multiplier* of the paper's Algorithm 3 (either `1` or
/// `1 + μ` for `A^opt`; other algorithms may use other multipliers).
///
/// The clock is anchored to *hardware-clock values* rather than real time:
/// between multiplier changes, `L_v = L_anchor + ρ_v · (H_v − H_anchor)`.
/// Keying to `H_v` means hardware-rate changes need no bookkeeping here —
/// only the algorithm's multiplier switches do. This mirrors the paper's
/// accounting quantity `R_v(t₁, t₂) = L_v(t₂) − L_v(t₁) − (H_v(t₂) − H_v(t₁))`.
///
/// # Example
///
/// ```
/// let mut l = gcs_time::LogicalClock::new();
/// l.start(0.0); // hardware value at initialization
/// l.set_multiplier(0.0, 1.0);
/// l.set_multiplier(10.0, 1.5); // switch to fast mode at H_v = 10
/// assert_eq!(l.value_at_hw(14.0), 16.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogicalClock {
    anchor: Option<Anchor>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Anchor {
    /// Hardware-clock value at the last multiplier change.
    h: f64,
    /// Logical value at the anchor.
    l: f64,
    /// Multiplier `ρ_v` in force since the anchor.
    multiplier: f64,
}

impl LogicalClock {
    /// A clock that has not been started; reads 0 everywhere.
    pub fn new() -> Self {
        LogicalClock { anchor: None }
    }

    /// Whether the clock has been started.
    pub fn is_started(&self) -> bool {
        self.anchor.is_some()
    }

    /// Starts the logical clock at value 0 when the hardware clock reads
    /// `h` (normally 0), with multiplier 1.
    ///
    /// # Panics
    ///
    /// Panics if already started.
    pub fn start(&mut self, h: f64) {
        assert!(self.anchor.is_none(), "logical clock started twice");
        self.anchor = Some(Anchor {
            h,
            l: 0.0,
            multiplier: 1.0,
        });
    }

    /// Sets the multiplier `ρ_v` effective from hardware value `h` onward.
    ///
    /// # Panics
    ///
    /// Panics if unstarted, if `h` precedes the anchor, or if
    /// `multiplier <= 0` (the paper's Condition (2) requires strictly
    /// positive progress).
    pub fn set_multiplier(&mut self, h: f64, multiplier: f64) {
        assert!(
            multiplier > 0.0,
            "logical multiplier must be positive, got {multiplier}"
        );
        let a = self
            .anchor
            .as_mut()
            .expect("set_multiplier on unstarted clock");
        assert!(
            h >= a.h,
            "multiplier change at H={h} precedes anchor {}",
            a.h
        );
        a.l += a.multiplier * (h - a.h);
        a.h = h;
        a.multiplier = multiplier;
    }

    /// Adds `delta` to the clock value instantly at hardware value `h`.
    ///
    /// This models the paper's remark after Theorem 5.10: if no strict upper
    /// bound on the logical clock rate is imposed (`β = ∞`), the computed
    /// increase `R_v` may simply be added to the clock at once.
    ///
    /// # Panics
    ///
    /// Panics if unstarted, `h` precedes the anchor, or `delta < 0` (logical
    /// clocks never run backwards).
    pub fn jump(&mut self, h: f64, delta: f64) {
        assert!(delta >= 0.0, "logical clocks never jump backwards: {delta}");
        let a = self.anchor.as_mut().expect("jump on unstarted clock");
        assert!(h >= a.h, "jump at H={h} precedes anchor {}", a.h);
        a.l += a.multiplier * (h - a.h) + delta;
        a.h = h;
    }

    /// The multiplier currently in force.
    ///
    /// # Panics
    ///
    /// Panics if the clock is unstarted.
    pub fn multiplier(&self) -> f64 {
        self.anchor
            .expect("multiplier of unstarted clock")
            .multiplier
    }

    /// The logical value when the hardware clock reads `h`; 0 if unstarted.
    ///
    /// # Panics
    ///
    /// Panics if `h` precedes the anchor.
    pub fn value_at_hw(&self, h: f64) -> f64 {
        match self.anchor {
            None => 0.0,
            Some(a) => {
                assert!(h >= a.h, "value_at_hw({h}) precedes anchor {}", a.h);
                a.l + a.multiplier * (h - a.h)
            }
        }
    }

    /// Assuming the current multiplier persists, the hardware value at which
    /// the logical clock reaches `target`; `None` if unstarted, the anchor's
    /// hardware value if already reached.
    pub fn hw_when(&self, target: f64) -> Option<f64> {
        let a = self.anchor?;
        if target <= a.l {
            return Some(a.h);
        }
        Some(a.h + (target - a.l) / a.multiplier)
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        LogicalClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unstarted_reads_zero() {
        let l = LogicalClock::new();
        assert_eq!(l.value_at_hw(5.0), 0.0);
        assert!(!l.is_started());
        assert_eq!(l.hw_when(1.0), None);
    }

    #[test]
    fn tracks_hardware_progress_times_multiplier() {
        let mut l = LogicalClock::new();
        l.start(0.0);
        assert_eq!(l.value_at_hw(4.0), 4.0);
        l.set_multiplier(4.0, 1.25);
        assert!((l.value_at_hw(8.0) - 9.0).abs() < 1e-12);
        l.set_multiplier(8.0, 1.0);
        assert!((l.value_at_hw(10.0) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn jump_advances_instantly() {
        let mut l = LogicalClock::new();
        l.start(0.0);
        l.jump(3.0, 2.0);
        assert!((l.value_at_hw(3.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "never jump backwards")]
    fn negative_jump_panics() {
        let mut l = LogicalClock::new();
        l.start(0.0);
        l.jump(1.0, -0.5);
    }

    #[test]
    fn hw_when_inverts_value() {
        let mut l = LogicalClock::new();
        l.start(2.0);
        l.set_multiplier(6.0, 2.0);
        // L = 4 at H = 6; target 10 -> H = 6 + 3 = 9.
        assert!((l.hw_when(10.0).unwrap() - 9.0).abs() < 1e-12);
        assert_eq!(l.hw_when(1.0), Some(6.0));
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        let mut l = LogicalClock::new();
        l.start(0.0);
        l.start(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_multiplier_panics() {
        let mut l = LogicalClock::new();
        l.start(0.0);
        l.set_multiplier(1.0, 0.0);
    }

    #[test]
    fn multiplier_accessor() {
        let mut l = LogicalClock::new();
        l.start(0.0);
        assert_eq!(l.multiplier(), 1.0);
        l.set_multiplier(0.0, 1.1);
        assert_eq!(l.multiplier(), 1.1);
    }
}
