//! Piecewise-constant clock-rate functions.

use std::error::Error;
use std::fmt;

/// Error returned when constructing or extending an ill-formed
/// [`RateSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The step list was empty; a schedule must define a rate from time zero.
    Empty,
    /// The first step did not start at time `0.0`.
    MissingOrigin {
        /// Start time of the first step that was supplied.
        first_start: f64,
    },
    /// Step start times were not strictly increasing.
    UnorderedSteps {
        /// Index of the offending step.
        index: usize,
    },
    /// A rate was non-positive or non-finite; hardware clocks must make
    /// strictly positive progress (`ε < 1` in the paper's model).
    InvalidRate {
        /// The offending rate value.
        rate: f64,
    },
    /// A step time was non-finite.
    InvalidTime {
        /// The offending time value.
        time: f64,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Empty => write!(f, "rate schedule has no steps"),
            ScheduleError::MissingOrigin { first_start } => write!(
                f,
                "rate schedule must start at time 0, first step starts at {first_start}"
            ),
            ScheduleError::UnorderedSteps { index } => write!(
                f,
                "rate schedule step {index} does not strictly follow its predecessor"
            ),
            ScheduleError::InvalidRate { rate } => {
                write!(f, "clock rate {rate} is not strictly positive and finite")
            }
            ScheduleError::InvalidTime { time } => {
                write!(f, "step time {time} is not finite")
            }
        }
    }
}

impl Error for ScheduleError {}

/// A piecewise-constant rate function `h(t)`.
///
/// This is the representation of the paper's variable hardware-clock rates:
/// an execution (its Section 3) assigns every node a measurable rate function
/// with values in `[1 − ε, 1 + ε]`; all of the paper's adversarial
/// constructions — and any simulation with finitely many decision points —
/// use piecewise-constant rates, which also admit exact integration.
///
/// The step starting at time `tᵢ` applies on the half-open interval
/// `[tᵢ, tᵢ₊₁)`; the final step extends to `+∞`.
///
/// # Example
///
/// ```
/// use gcs_time::RateSchedule;
///
/// let s = RateSchedule::from_steps(vec![(0.0, 1.0), (5.0, 1.1)])?;
/// assert_eq!(s.rate_at(4.999), 1.0);
/// assert_eq!(s.rate_at(5.0), 1.1);
/// assert!((s.integrate(0.0, 10.0) - (5.0 + 5.5)).abs() < 1e-12);
/// # Ok::<(), gcs_time::ScheduleError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RateSchedule {
    /// Strictly increasing step start times; `starts[0] == 0.0`.
    starts: Vec<f64>,
    /// `rates[i]` applies on `[starts[i], starts[i + 1])`.
    rates: Vec<f64>,
}

impl RateSchedule {
    /// A schedule that runs at `rate` forever.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InvalidRate`] if `rate` is not strictly
    /// positive and finite.
    pub fn constant(rate: f64) -> crate::Result<Self> {
        Self::from_steps(vec![(0.0, rate)])
    }

    /// Builds a schedule from `(start_time, rate)` steps.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty, does not start at time zero,
    /// is not strictly increasing in time, or contains a rate that is not
    /// strictly positive and finite.
    pub fn from_steps(steps: Vec<(f64, f64)>) -> crate::Result<Self> {
        if steps.is_empty() {
            return Err(ScheduleError::Empty);
        }
        if steps[0].0 != 0.0 {
            return Err(ScheduleError::MissingOrigin {
                first_start: steps[0].0,
            });
        }
        let mut starts = Vec::with_capacity(steps.len());
        let mut rates = Vec::with_capacity(steps.len());
        for (index, &(time, rate)) in steps.iter().enumerate() {
            if !time.is_finite() {
                return Err(ScheduleError::InvalidTime { time });
            }
            if !(rate.is_finite() && rate > 0.0) {
                return Err(ScheduleError::InvalidRate { rate });
            }
            if index > 0 && time <= steps[index - 1].0 {
                return Err(ScheduleError::UnorderedSteps { index });
            }
            starts.push(time);
            rates.push(rate);
        }
        Ok(RateSchedule { starts, rates })
    }

    /// Appends a step starting at `time` with the given `rate`.
    ///
    /// Adversaries extend schedules online as the execution unfolds.
    ///
    /// # Errors
    ///
    /// Returns an error if `time` does not strictly follow the last step or
    /// `rate` is invalid.
    pub fn push_step(&mut self, time: f64, rate: f64) -> crate::Result<()> {
        if !time.is_finite() {
            return Err(ScheduleError::InvalidTime { time });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(ScheduleError::InvalidRate { rate });
        }
        if time <= *self.starts.last().expect("schedule is never empty") {
            return Err(ScheduleError::UnorderedSteps {
                index: self.starts.len(),
            });
        }
        self.starts.push(time);
        self.rates.push(rate);
        Ok(())
    }

    /// The rate in force at time `t` (clamped to the first step for `t < 0`).
    pub fn rate_at(&self, t: f64) -> f64 {
        self.rates[self.segment_index(t)]
    }

    /// The first step-change time strictly after `t`, if any.
    pub fn next_change_after(&self, t: f64) -> Option<f64> {
        let idx = self.segment_index(t);
        self.starts.get(idx + 1).copied()
    }

    /// Exact integral `∫_{t0}^{t1} h(τ) dτ` (requires `t0 <= t1`).
    ///
    /// # Panics
    ///
    /// Panics if `t0 > t1`.
    pub fn integrate(&self, t0: f64, t1: f64) -> f64 {
        assert!(t0 <= t1, "integrate requires t0 <= t1, got {t0} > {t1}");
        let mut total = 0.0;
        let mut cursor = t0;
        let mut idx = self.segment_index(t0);
        while cursor < t1 {
            let seg_end = self.starts.get(idx + 1).copied().unwrap_or(f64::INFINITY);
            let upper = seg_end.min(t1);
            total += self.rates[idx] * (upper - cursor);
            cursor = upper;
            idx += 1;
        }
        total
    }

    /// Smallest rate appearing anywhere in the schedule.
    pub fn min_rate(&self) -> f64 {
        self.rates.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest rate appearing anywhere in the schedule.
    pub fn max_rate(&self) -> f64 {
        self.rates.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of constant-rate segments.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the schedule consists of a single segment.
    ///
    /// Schedules are never empty, so this reports "no rate change ever
    /// happens" rather than literal emptiness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over `(start_time, rate)` segments.
    pub fn steps(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.starts.iter().copied().zip(self.rates.iter().copied())
    }

    /// Checks that every rate lies within `bounds` (the paper's
    /// `h_v(t) ∈ [1 − ε, 1 + ε]`).
    pub fn respects(&self, bounds: crate::DriftBounds) -> bool {
        self.rates
            .iter()
            .all(|&r| r >= bounds.min_rate() - 1e-12 && r <= bounds.max_rate() + 1e-12)
    }

    fn segment_index(&self, t: f64) -> usize {
        match self
            .starts
            .binary_search_by(|s| s.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }
}

impl Default for RateSchedule {
    /// The unit-rate schedule (a perfect clock).
    fn default() -> Self {
        RateSchedule::constant(1.0).expect("1.0 is a valid rate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriftBounds;

    #[test]
    fn constant_schedule_reports_single_rate() {
        let s = RateSchedule::constant(1.25).unwrap();
        assert_eq!(s.rate_at(0.0), 1.25);
        assert_eq!(s.rate_at(1e9), 1.25);
        assert_eq!(s.next_change_after(0.0), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn from_steps_rejects_empty() {
        assert_eq!(RateSchedule::from_steps(vec![]), Err(ScheduleError::Empty));
    }

    #[test]
    fn from_steps_rejects_missing_origin() {
        let err = RateSchedule::from_steps(vec![(1.0, 1.0)]).unwrap_err();
        assert!(matches!(err, ScheduleError::MissingOrigin { .. }));
    }

    #[test]
    fn from_steps_rejects_unordered() {
        let err = RateSchedule::from_steps(vec![(0.0, 1.0), (2.0, 1.1), (2.0, 1.2)]).unwrap_err();
        assert_eq!(err, ScheduleError::UnorderedSteps { index: 2 });
    }

    #[test]
    fn from_steps_rejects_zero_negative_or_nan_rate() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = RateSchedule::from_steps(vec![(0.0, bad)]).unwrap_err();
            assert!(matches!(err, ScheduleError::InvalidRate { .. }), "{bad}");
        }
    }

    #[test]
    fn rate_lookup_uses_half_open_segments() {
        let s = RateSchedule::from_steps(vec![(0.0, 1.0), (3.0, 2.0), (7.0, 0.5)]).unwrap();
        assert_eq!(s.rate_at(0.0), 1.0);
        assert_eq!(s.rate_at(2.999_999), 1.0);
        assert_eq!(s.rate_at(3.0), 2.0);
        assert_eq!(s.rate_at(6.5), 2.0);
        assert_eq!(s.rate_at(7.0), 0.5);
        assert_eq!(s.rate_at(100.0), 0.5);
    }

    #[test]
    fn next_change_after_finds_following_breakpoint() {
        let s = RateSchedule::from_steps(vec![(0.0, 1.0), (3.0, 2.0), (7.0, 0.5)]).unwrap();
        assert_eq!(s.next_change_after(0.0), Some(3.0));
        assert_eq!(s.next_change_after(3.0), Some(7.0));
        assert_eq!(s.next_change_after(6.9), Some(7.0));
        assert_eq!(s.next_change_after(7.0), None);
    }

    #[test]
    fn integrate_is_exact_across_segments() {
        let s = RateSchedule::from_steps(vec![(0.0, 1.0), (3.0, 2.0), (7.0, 0.5)]).unwrap();
        // [1, 3): rate 1 -> 2; [3, 7): rate 2 -> 8; [7, 9]: rate 0.5 -> 1.
        assert!((s.integrate(1.0, 9.0) - 11.0).abs() < 1e-12);
        assert_eq!(s.integrate(4.0, 4.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "integrate requires t0 <= t1")]
    fn integrate_panics_on_reversed_interval() {
        let s = RateSchedule::default();
        let _ = s.integrate(2.0, 1.0);
    }

    #[test]
    fn push_step_appends_and_validates() {
        let mut s = RateSchedule::constant(1.0).unwrap();
        s.push_step(5.0, 1.5).unwrap();
        assert_eq!(s.rate_at(6.0), 1.5);
        assert!(s.push_step(5.0, 2.0).is_err());
        assert!(s.push_step(6.0, -2.0).is_err());
    }

    #[test]
    fn min_max_rates() {
        let s = RateSchedule::from_steps(vec![(0.0, 0.9), (1.0, 1.1), (2.0, 1.05)]).unwrap();
        assert_eq!(s.min_rate(), 0.9);
        assert_eq!(s.max_rate(), 1.1);
    }

    #[test]
    fn respects_checks_drift_bounds() {
        let s = RateSchedule::from_steps(vec![(0.0, 0.95), (1.0, 1.05)]).unwrap();
        assert!(s.respects(DriftBounds::new(0.05).unwrap()));
        assert!(!s.respects(DriftBounds::new(0.01).unwrap()));
    }

    #[test]
    fn default_is_unit_rate() {
        let s = RateSchedule::default();
        assert_eq!(s.rate_at(42.0), 1.0);
    }

    #[test]
    fn steps_iterates_in_order() {
        let s = RateSchedule::from_steps(vec![(0.0, 1.0), (3.0, 2.0)]).unwrap();
        let collected: Vec<_> = s.steps().collect();
        assert_eq!(collected, vec![(0.0, 1.0), (3.0, 2.0)]);
    }
}
