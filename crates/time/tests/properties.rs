//! Property-based tests for clock primitives.

use gcs_time::{DriftBounds, HardwareClock, LogicalClock, RateSchedule};
use proptest::prelude::*;

/// Strategy producing a valid list of (start, rate) steps beginning at 0.
fn schedule_steps() -> impl Strategy<Value = Vec<(f64, f64)>> {
    (
        prop::collection::vec((0.01f64..100.0, 0.5f64..1.5), 0..20),
        0.5f64..1.5,
    )
        .prop_map(|(increments, first_rate)| {
            let mut steps = vec![(0.0, first_rate)];
            let mut t = 0.0;
            for (dt, rate) in increments {
                t += dt;
                steps.push((t, rate));
            }
            steps
        })
}

proptest! {
    #[test]
    fn schedule_integral_is_monotone_and_rate_bounded(steps in schedule_steps(),
                                                      a in 0.0f64..500.0,
                                                      b in 0.0f64..500.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let s = RateSchedule::from_steps(steps).unwrap();
        let integral = s.integrate(lo, hi);
        prop_assert!(integral >= 0.0);
        prop_assert!(integral >= s.min_rate() * (hi - lo) - 1e-9);
        prop_assert!(integral <= s.max_rate() * (hi - lo) + 1e-9);
    }

    #[test]
    fn schedule_integral_is_interval_additive(steps in schedule_steps(),
                                              a in 0.0f64..200.0,
                                              b in 0.0f64..200.0,
                                              c in 0.0f64..200.0) {
        let mut ts = [a, b, c];
        ts.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let s = RateSchedule::from_steps(steps).unwrap();
        let whole = s.integrate(ts[0], ts[2]);
        let split = s.integrate(ts[0], ts[1]) + s.integrate(ts[1], ts[2]);
        prop_assert!((whole - split).abs() < 1e-8);
    }

    #[test]
    fn hardware_clock_matches_schedule_integral(steps in schedule_steps(),
                                                t in 0.0f64..400.0) {
        let s = RateSchedule::from_steps(steps).unwrap();
        let mut hw = HardwareClock::new();
        hw.start(0.0, s.rate_at(0.0));
        let mut cursor = 0.0;
        while let Some(change) = s.next_change_after(cursor) {
            if change > t {
                break;
            }
            hw.set_rate(change, s.rate_at(change));
            cursor = change;
        }
        let expected = s.integrate(0.0, t);
        prop_assert!((hw.value_at(t) - expected).abs() < 1e-8);
    }

    #[test]
    fn hardware_time_when_round_trips(rate in 0.5f64..1.5,
                                      start in 0.0f64..50.0,
                                      target in 0.0f64..100.0) {
        let mut hw = HardwareClock::new();
        hw.start(start, rate);
        let t = hw.time_when(target).unwrap();
        prop_assert!(t >= start);
        if target > 0.0 {
            prop_assert!((hw.value_at(t) - target).abs() < 1e-9);
        }
    }

    #[test]
    fn logical_clock_is_monotone(jumps in prop::collection::vec((0.01f64..10.0, 0.9f64..1.5), 1..20)) {
        let mut l = LogicalClock::new();
        l.start(0.0);
        let mut h = 0.0;
        let mut last_value = 0.0;
        for (dh, m) in jumps {
            h += dh;
            let v = l.value_at_hw(h);
            prop_assert!(v >= last_value - 1e-12);
            last_value = v;
            l.set_multiplier(h, m);
        }
    }

    #[test]
    fn drift_bounds_clamp_is_contained(eps in 1e-6f64..0.99, rate in -2.0f64..4.0) {
        let b = DriftBounds::new(eps).unwrap();
        prop_assert!(b.contains(b.clamp(rate)));
    }
}
