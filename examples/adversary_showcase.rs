//! A tour of the paper's lower-bound machinery (Section 7).
//!
//! ```sh
//! cargo run --release --example adversary_showcase
//! ```
//!
//! 1. **Theorem 7.2** — three executions `E₁`/`E₂`/`E₃` that no node can
//!    tell apart, one of which hides `(1 + ϱ)·D·𝒯` of real skew. We run all
//!    three against `A^opt`, verify the indistinguishability empirically
//!    from the nodes' local logs, and compare the forced skew with `A^opt`'s
//!    upper bound 𝒢 — the two are within a small constant of each other,
//!    which is the sense in which the bounds are *tight*.
//! 2. **Theorem 7.7** — the iterative construction that concentrates skew
//!    onto ever-shorter path segments until two *neighbours* disagree.

use clock_sync::adversary::framed::LocalLowerBound;
use clock_sync::adversary::shift::GlobalLowerBound;
use clock_sync::analysis::Table;
use clock_sync::core::{AOpt, NoSync, Params};
use clock_sync::graph::topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Theorem 7.2 -------------------------------------------------
    let (eps, t, t_hat) = (0.05, 0.5, 1.0); // the algorithm's 𝒯̂ is 2× loose
    let d = 8;
    let lb = GlobalLowerBound::new(topology::path(d + 1), eps, eps, t, t_hat, 0.01);
    let params = Params::recommended(eps, t_hat)?;
    println!("Theorem 7.2 on a path of D = {d} (ε = {eps}, 𝒯 = {t}, 𝒯̂ = {t_hat}):");
    println!(
        "  ϱ = {:.4}; forced skew (1+ϱ)·D·𝒯 = {:.4}",
        lb.rho(),
        lb.predicted_skew()
    );

    let (reports, indistinguishable) =
        lb.verify_indistinguishable(|| vec![AOpt::new(params); d + 1]);
    let mut table = Table::new(vec!["execution", "endpoint skew", "max skew"]);
    for r in &reports {
        table.row(vec![
            format!("{:?}", r.execution),
            format!("{:.4}", r.endpoint_skew),
            format!("{:.4}", r.max_skew),
        ]);
    }
    println!("{table}");
    println!("  locally indistinguishable at every node: {indistinguishable}");
    println!(
        "  A^opt's global-skew bound 𝒢 = {:.4} (forced/𝒢 = {:.2})",
        params.global_skew_bound(d as u32),
        reports[2].endpoint_skew / params.global_skew_bound(d as u32)
    );
    assert!(indistinguishable);
    assert!(reports[2].endpoint_skew >= 0.9 * lb.predicted_skew());

    // ---- Theorem 7.7 -------------------------------------------------
    println!("\nTheorem 7.7 iterative construction (b = 5, S = 2, against NoSync):");
    let eps = 0.2;
    let alpha = 1.0 - eps;
    let llb = LocalLowerBound::new(5, 2, eps, 1.0, alpha);
    let reports = llb.run(|n| vec![NoSync; n]);
    let mut table = Table::new(vec![
        "stage",
        "pair",
        "distance",
        "skew",
        "target (k+1)/2·α·d·𝒯",
    ]);
    for r in &reports {
        table.row(vec![
            r.stage.to_string(),
            format!("v{}..v{}", r.ahead, r.behind),
            r.distance.to_string(),
            format!("{:.4}", r.skew),
            format!("{:.4}", r.target),
        ]);
    }
    println!("{table}");
    let last = reports.last().unwrap();
    println!(
        "  forced local skew between neighbours: {:.4} ≥ guaranteed {:.4}",
        last.skew,
        llb.guaranteed_final_skew()
    );
    assert!(last.skew >= llb.guaranteed_final_skew() - 1e-9);

    println!("\nthe same construction aimed at A^opt (b = 3, S = 2):");
    let eps = 0.1;
    let params = Params::recommended(eps, 1.0)?;
    let llb = LocalLowerBound::new(3, 2, eps, 1.0, 1.0 - eps);
    let reports = llb.run(|n| vec![AOpt::new(params); n]);
    let last = reports.last().unwrap();
    println!(
        "  forced {:.4} vs A^opt's local-skew bound {:.4} on D = {} — the gap is the\n  approximation factor the paper proves is a small constant.",
        last.skew,
        params.local_skew_bound(llb.d_prime() as u32),
        llb.d_prime()
    );
    Ok(())
}
