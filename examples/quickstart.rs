//! Quickstart: synchronize a 4×4 grid of drifting clocks with `A^opt`.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Sets up the paper's model — hardware clocks drifting within `[1−ε, 1+ε]`,
//! message delays varying within `[0, 𝒯]` — runs the `A^opt` algorithm, and
//! compares the observed global and local skews against the proven bounds
//! (Theorems 5.5 and 5.10).

use clock_sync::analysis::SkewObserver;
use clock_sync::core::{AOpt, Params};
use clock_sync::graph::topology;
use clock_sync::sim::{rates, Engine, UniformDelay};
use clock_sync::time::DriftBounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The environment: drift up to 0.1%, delays up to 10 ms.
    let epsilon = 1e-3;
    let t_max = 0.010;
    let drift = DriftBounds::new(epsilon)?;

    // The algorithm knows upper bounds on both (here: exact values) and
    // derives its parameters: μ, the send period H₀, and the quantum κ.
    let params = Params::recommended(epsilon, t_max)?;
    println!("A^opt parameters:");
    println!("  μ  (fast-mode boost)   = {:.6}", params.mu());
    println!("  H₀ (send period)       = {:.4} s", params.h0());
    println!("  κ  (balancing quantum) = {:.6} s", params.kappa());
    println!("  σ  (logarithm base)    = {}", params.sigma());

    // A 4×4 grid (diameter 6); every node's hardware clock performs a
    // seeded random drift walk, and delays are uniform in [0, 𝒯].
    let graph = topology::grid(4, 4);
    let n = graph.len();
    let diameter = graph.diameter();
    let horizon = 120.0;
    let schedules = rates::random_walk(n, drift, 5.0, horizon, 42);

    let mut observer = SkewObserver::new(&graph);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(t_max, 7))
        .rate_schedules(schedules)
        .build();

    // Wake node 0; the initialization message floods the rest.
    engine.wake(clock_sync::graph::NodeId(0), 0.0);
    engine.run_until_observed(horizon, |e| observer.observe(e));

    println!("\nafter {horizon} s on a 4×4 grid (D = {diameter}):");
    println!(
        "  worst global skew  {:>12.6} s   (bound 𝒢 = {:.6} s)",
        observer.worst_global(),
        params.global_skew_bound(diameter)
    );
    println!(
        "  worst local skew   {:>12.6} s   (bound   = {:.6} s)",
        observer.worst_local(),
        params.local_skew_bound(diameter)
    );
    println!(
        "  messages           {:>12} broadcasts ({:.2} per node per H₀)",
        engine.message_stats().send_events,
        engine.message_stats().send_events as f64 / n as f64 / (horizon / params.h0())
    );

    assert!(observer.worst_global() <= params.global_skew_bound(diameter));
    assert!(observer.worst_local() <= params.local_skew_bound(diameter));
    println!("\nboth proven bounds hold.");
    Ok(())
}
