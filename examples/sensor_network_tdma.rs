//! TDMA slot scheduling in a wireless sensor network — the paper's
//! motivating application (its footnote 1: "a prominent example is TDMA in
//! wireless networks where nodes depend on locally well synchronized time
//! slots").
//!
//! ```sh
//! cargo run --example sensor_network_tdma
//! ```
//!
//! A random geometric graph models the radio deployment. TDMA only needs
//! *neighbouring* nodes to agree on slot boundaries — exactly the gradient
//! property: the guard interval must absorb the worst-case **local** skew,
//! not the global one. This example sizes the guard interval from
//! Theorem 5.10 and validates it against an adversarial simulation.

use clock_sync::analysis::{SkewObserver, Table};
use clock_sync::core::{AOpt, Params};
use clock_sync::graph::topology;
use clock_sync::sim::{rates, Engine, UniformDelay};
use clock_sync::time::DriftBounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Radio environment: 60 motes in a unit square, radio range 0.25;
    // MAC-layer timestamping gives a delay uncertainty of 2 ms; cheap
    // crystals drift by up to 50 ppm... scaled here to 0.5% so that a short
    // simulation exercises the same regime (drift × duration ≈ skew scale).
    let epsilon = 5e-3;
    let t_max = 0.002;
    let drift = DriftBounds::new(epsilon)?;
    let graph = topology::random_geometric(60, 0.25, 2024);
    let n = graph.len();
    let diameter = graph.diameter();

    let params = Params::recommended(epsilon, t_max)?;
    let guard = params.local_skew_bound(diameter);

    println!(
        "deployment: {n} motes, diameter {diameter}, max degree {}",
        graph.max_degree()
    );
    println!("slot guard interval from Thm 5.10: {:.4} ms", guard * 1e3);
    println!(
        "(a global-skew-based guard would need {:.4} ms — {}× larger)",
        params.global_skew_bound(diameter) * 1e3,
        (params.global_skew_bound(diameter) / guard).round()
    );

    // Adversarial-ish environment: drift random walks + uniform delays.
    let horizon = 60.0;
    let schedules = rates::random_walk(n, drift, 3.0, horizon, 5);
    let mut observer = SkewObserver::new(&graph).with_series(5.0);
    let mut engine = Engine::builder(graph.clone())
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(t_max, 99))
        .rate_schedules(schedules)
        .build();
    engine.wake(clock_sync::graph::NodeId(0), 0.0);
    engine.run_until_observed(horizon, |e| observer.observe(e));

    let mut table = Table::new(vec!["t (s)", "global skew (ms)", "local skew (ms)"]);
    for s in observer.series() {
        table.row(vec![
            format!("{:.0}", s.t),
            format!("{:.4}", s.global * 1e3),
            format!("{:.4}", s.local * 1e3),
        ]);
    }
    println!("\n{table}");

    let worst_local_ms = observer.worst_local() * 1e3;
    println!(
        "worst local skew ever: {worst_local_ms:.4} ms (guard {:.4} ms)",
        guard * 1e3
    );
    assert!(observer.worst_local() <= guard, "guard interval violated!");

    // Slot accounting: size the slot so the guard costs 20% of capacity.
    let slot = guard * 5.0;
    println!(
        "minimum slot for 80% TDMA efficiency: {:.1} ms (guard overhead {:.1}%)",
        slot * 1e3,
        guard / slot * 100.0
    );
    println!(
        "with the *measured* worst local skew instead, slots of {:.1} ms would do",
        observer.worst_local() * 5.0 * 1e3
    );
    Ok(())
}
