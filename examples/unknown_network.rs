//! Bootstrapping synchronization in a network about which nothing is known
//! (paper Section 8.1).
//!
//! ```sh
//! cargo run --release --example unknown_network
//! ```
//!
//! The operators know an upper bound on the oscillator drift (it is printed
//! on the crystal's datasheet) but *nothing* about message delays. The
//! adaptive variant starts from a deliberately absurd guess, measures round
//! trips with probe/ack pairs piggybacked on its own traffic, floods the
//! largest estimate, and re-derives `(κ, H₀)` on the fly — converging to a
//! working configuration without any out-of-band calibration.

use clock_sync::analysis::Table;
use clock_sync::core::AdaptiveAOpt;
use clock_sync::graph::{topology, NodeId};
use clock_sync::sim::{rates, Engine, UniformDelay};
use clock_sync::time::DriftBounds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let epsilon = 0.01; // from the datasheet
    let t_true = 0.35; // unknown to every node!
    let initial_guess = 0.001; // wrong by 350×

    let graph = topology::erdos_renyi(20, 0.12, 7);
    let n = graph.len();
    let d = graph.diameter();
    let drift = DriftBounds::new(epsilon)?;
    let horizon = 400.0;
    let schedules = rates::random_walk(n, drift, 10.0, horizon, 3);

    let mut engine = Engine::builder(graph.clone())
        .protocols(vec![AdaptiveAOpt::new(epsilon, initial_guess); n])
        .delay_model(UniformDelay::new(t_true, 11))
        .rate_schedules(schedules)
        .build();
    engine.wake(NodeId(0), 0.0);

    println!("random network: {n} nodes, diameter {d}; true 𝒯 = {t_true} (hidden)");
    println!("every node starts with 𝒯̂ = {initial_guess}\n");

    let mut table = Table::new(vec![
        "t",
        "min 𝒯̂",
        "max 𝒯̂",
        "max adaptations",
        "global skew",
    ]);
    for checkpoint in [5.0, 20.0, 60.0, 150.0, horizon] {
        engine.run_until(checkpoint);
        let t_hats: Vec<f64> = (0..n).map(|v| engine.protocol(NodeId(v)).t_hat()).collect();
        let clocks = engine.logical_values();
        let spread = clocks.iter().cloned().fold(f64::MIN, f64::max)
            - clocks.iter().cloned().fold(f64::MAX, f64::min);
        table.row(vec![
            format!("{checkpoint}"),
            format!("{:.4}", t_hats.iter().cloned().fold(f64::MAX, f64::min)),
            format!("{:.4}", t_hats.iter().cloned().fold(f64::MIN, f64::max)),
            (0..n)
                .map(|v| engine.protocol(NodeId(v)).adaptations())
                .max()
                .unwrap()
                .to_string(),
            format!("{spread:.4}"),
        ]);
    }
    println!("{table}");

    let final_params = *engine.protocol(NodeId(0)).params();
    println!(
        "converged 𝒯̂ = {:.4} ({:.1}× the hidden truth; round trips measure ≤ 2𝒯,\ndoubling adds ≤ 2×), final κ = {:.4}, H₀ = {:.4}",
        final_params.t_hat(),
        final_params.t_hat() / t_true,
        final_params.kappa(),
        final_params.h0()
    );
    let clocks = engine.logical_values();
    let spread = clocks.iter().cloned().fold(f64::MIN, f64::max)
        - clocks.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread <= final_params.global_skew_bound(d));
    println!(
        "final global skew {spread:.4} ≤ converged bound {:.4} ✓",
        final_params.global_skew_bound(d)
    );
    Ok(())
}
