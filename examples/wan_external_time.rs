//! External synchronization: distributing a reference clock through a
//! datacenter-style tree (paper Section 8.5).
//!
//! ```sh
//! cargo run --example wan_external_time
//! ```
//!
//! One node holds real time (say, a GPS-disciplined clock). Every other
//! node must track it as closely as its distance permits, and — crucially —
//! **never run ahead of real time** (so that timestamps issued anywhere in
//! the system are always in the past when audited at the source). The
//! `ExternalAOpt` variant damps the estimate growth to `h/(1 + ε̂)` to
//! guarantee exactly that.

use clock_sync::analysis::Table;
use clock_sync::core::{ExternalAOpt, Params};
use clock_sync::graph::{topology, NodeId};
use clock_sync::sim::{rates, Engine, UniformDelay};
use clock_sync::time::{DriftBounds, RateSchedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 31-node binary distribution tree; node 0 is the reference.
    let epsilon = 2e-3;
    let t_max = 0.005;
    let graph = topology::binary_tree(31);
    let n = graph.len();
    let params = Params::recommended(epsilon, t_max)?;
    let drift = DriftBounds::new(epsilon)?;

    let mut nodes = vec![ExternalAOpt::reference(params)];
    nodes.extend(vec![ExternalAOpt::new(params); n - 1]);

    // The reference's oscillator is disciplined (rate exactly 1); everyone
    // else drifts randomly.
    let horizon = 120.0;
    let mut schedules = vec![RateSchedule::constant(1.0)?];
    schedules.extend(rates::random_walk(n - 1, drift, 4.0, horizon, 17));

    let mut engine = Engine::builder(graph.clone())
        .protocols(nodes)
        .delay_model(UniformDelay::new(t_max, 31))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);

    let mut worst_ahead: f64 = f64::MIN;
    let mut worst_lag_by_depth = vec![0.0f64; graph.eccentricity(NodeId(0)) as usize + 1];
    let depths = graph.distances_from(NodeId(0));
    engine.run_until_observed(horizon, |e| {
        let now = e.now();
        for (v, &depth) in depths.iter().enumerate() {
            let l = e.logical_value(NodeId(v));
            worst_ahead = worst_ahead.max(l - now);
            let lag = now - l;
            let d = depth as usize;
            if lag > worst_lag_by_depth[d] {
                worst_lag_by_depth[d] = lag;
            }
        }
    });

    println!("external synchronization on a binary tree of {n} nodes");
    println!("reference = node 0; horizon = {horizon} s\n");
    let mut table = Table::new(vec![
        "depth d",
        "worst lag behind real time (ms)",
        "d·𝒯 (ms)",
    ]);
    for (d, &lag) in worst_lag_by_depth.iter().enumerate() {
        table.row(vec![
            d.to_string(),
            format!("{:.4}", lag * 1e3),
            format!("{:.4}", d as f64 * t_max * 1e3),
        ]);
    }
    println!("{table}");
    println!(
        "worst 'ahead of real time' across all nodes: {:.3e} s",
        worst_ahead.max(0.0)
    );
    assert!(
        worst_ahead <= 1e-9,
        "a clock overtook real time — the Section 8.5 guarantee failed"
    );
    println!("no logical clock ever overtook real time ✓");
    Ok(())
}
