//! `gcs` — command-line driver for the gradient clock-synchronization
//! reproduction.
//!
//! ```text
//! gcs bounds        print A^opt parameters and skew bounds for (ε̂, 𝒯̂, D)
//! gcs run           simulate an algorithm on a topology and report skews
//! gcs sweep         run a parameter grid on a parallel worker pool
//! gcs chaos         seeded fault-injection scenarios (run|batch|shrink|replay)
//! gcs trace         forensics over a recorded event stream
//! gcs top           render a live heartbeat stream as a status report
//! gcs bench         compare benchmark artifacts (bench diff OLD NEW)
//! gcs replay-check  diff two JSONL event logs (determinism check)
//! gcs lb-global     run the Theorem 7.2 forced-global-skew construction
//! gcs lb-local      run the Theorem 7.7 forced-local-skew construction
//! ```
//!
//! Run `gcs <command> --help` for each command's options, or `gcs --help`
//! for this overview.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::process::ExitCode;
use std::time::Instant;

use clock_sync::adversary::framed::LocalLowerBound;
use clock_sync::adversary::shift::GlobalLowerBound;
use clock_sync::analysis::{
    diff_streams, encode_event, ClockTrace, ComplexityReport, InvariantWatchdog, JsonlWriter,
    MetricsSink, SkewObserver, Table, WatchdogTrip,
};
use clock_sync::bench::{diff as bench_diff, parse_artifact, run_serve_bench, ServeBenchConfig};
use clock_sync::chaos::{
    run_batch, run_scenario, shrink as shrink_scenario, BatchConfig, ChaosSpec, ScenarioOutcome,
};
use clock_sync::core::{
    AOpt, AOptJump, EnvelopeAOpt, MaxAlgorithm, MidpointAlgorithm, MinGapAOpt, NoSync, Params,
};
use clock_sync::forensics::{
    blame, decode_dump, export_chrome, is_recorder_dump, parse_stream, ClockReconstruction, Dag,
    TraceSummary,
};
use clock_sync::graph::Graph;
use clock_sync::serve::{ServeConfig, ServerHandle};
use clock_sync::sim::{
    DelayModel, DropCause, Engine, EngineEvent, EngineProfile, EventSink, MessageStats, Protocol,
    RecorderSink,
};
use clock_sync::sweep::{
    build_delay, build_rates, parse_topology, report, run_sweep_deduped, PoolProgress, SweepSpec,
};
use clock_sync::telemetry::{
    BeatInput, HeartbeatEmitter, ParStats, SkewFieldWriter, WatchdogStatus,
};
use clock_sync::time::{DriftBounds, RateSchedule};

const USAGE: &str = "\
gcs — gradient clock synchronization (Lenzen/Locher/Wattenhofer) toolkit

USAGE:
    gcs <command> [options]

COMMANDS:
    bounds        print A^opt parameters and skew bounds for (ε̂, 𝒯̂, D)
    run           simulate one algorithm on one topology and report skews
    sweep         run a parameter grid on a parallel worker pool
    chaos         seeded fault-injection scenarios (run|batch|shrink|replay)
    serve         admission-controlled simulation daemon with result caching
    serve-bench   hot/cold load generator against a `gcs serve` daemon
    trace         forensics over a recorded event stream (summary|blame|export)
    top           render a `--heartbeat` stream as a status report
    bench         compare `gcs-bench-result/v1` artifacts (bench diff OLD NEW)
    replay-check  diff two JSONL event logs (determinism check)
    lb-global     run the Theorem 7.2 forced-global-skew construction
    lb-local      run the Theorem 7.7 forced-local-skew construction

Run `gcs <command> --help` for the options of one command.

ALGORITHMS (--algo / --algos):
    aopt (default) | jump | mingap | envelope | max | midpoint | nosync

TOPOLOGIES (--topology / --topologies):
    path:N | ring:N | grid:WxH | torus:WxH | tree:N | star:N | complete:N
    hypercube:DIM | er:N:P (Erdős–Rényi) | geo:N:R (random geometric)

DELAYS (--delays):
    uniform (default) | const | zero | directional | wavefront[:BOUNDARY]

RATES (--rates):
    walk (default) | split | distsplit | alternating[:PERIOD] | gradient
    | nominal

EXAMPLES:
    gcs bounds --eps 1e-4 --t 0.001 --d 30
    gcs run --topology grid:6x6 --delays uniform --rates walk --horizon 200
    gcs sweep --topologies path:9,path:17 --seeds 8 --jobs 4 --csv out.csv
    gcs chaos batch --scenarios 1000 --fixtures chaos-findings
    gcs run --events run.jsonl && gcs trace blame run.jsonl
    gcs run --horizon 400 --heartbeat - | gcs top -
    gcs bench diff BENCH_engine_hotpath.json new/BENCH_engine_hotpath.json
    gcs replay-check a.jsonl b.jsonl
    gcs lb-global --d 16 --eps 0.05 --t 0.5 --t-hat 1.0
";

const BOUNDS_USAGE: &str = "\
gcs bounds — print A^opt parameters and skew bounds

USAGE:
    gcs bounds [--eps E] [--t T] [--d D] [--sigma S]

OPTIONS:
    --eps E     hardware drift bound ε̂          (default 1e-3)
    --t T       message delay bound 𝒯̂           (default 0.01)
    --d D       network diameter D              (default 32)
    --sigma S   force the log base σ instead of Eq. (6)'s recommendation
";

const RUN_USAGE: &str = "\
gcs run — simulate one algorithm on one topology and report skews

USAGE:
    gcs run [--algo NAME] [--topology SPEC] [--eps E] [--t T]
            [--horizon H] [--delays SPEC] [--rates SPEC] [--seed N]
            [--threads K|auto] [--trace FILE.csv] [--events FILE.jsonl]
            [--metrics FILE|-] [--watchdog] [--heartbeat FILE|-]
            [--dump-recorder FILE] [--skew-field FILE|-] [--kappa-factor F]

OPTIONS:
    --algo NAME          aopt|jump|mingap|envelope|max|midpoint|nosync
    --topology SPEC      e.g. path:16, grid:6x6, er:40:0.08  (default path:16)
    --eps E              drift bound ε̂                        (default 1e-2)
    --t T                delay bound 𝒯̂                        (default 0.1)
    --horizon H          real-time horizon                    (default 120)
    --delays SPEC        uniform|const|zero|directional|wavefront[:B]
    --rates SPEC         walk|split|distsplit|alternating[:P]|gradient|nominal
    --seed N             seed for random topology/delays/rates (default 42)
    --threads K|auto     run the engine on K cores via lookahead-windowed
                         parallel execution (see docs/PARALLEL.md); event
                         streams and every observer below stay byte-identical
                         to --threads 1. Errors out when the delay model
                         advertises no positive delay lower bound, unless
                         --allow-sequential-fallback. `auto` = all cores
    --allow-sequential-fallback
                         with --threads K>1 and a delay model that cannot be
                         parallelized, run sequentially instead of erroring

OBSERVABILITY:
    --trace FILE.csv     sampled clock trajectories (plotting)
    --events FILE.jsonl  complete engine event log, one JSON object per line;
                         byte-identical across same-seed runs (replay-check)
    --metrics FILE|-     print the metrics registry snapshot after the run
                         and write it as `gcs-metrics/v1` JSON to FILE
                         (`-` prints the JSON object to stdout instead)
    --watchdog           check Conditions (1)/(2) and the Def. 5.6 legal
                         state online; on violation, dump the last events
    --heartbeat FILE|-   stream `gcs-heartbeat/v1` JSONL progress records,
                         paced by simulated time (`-` = stdout); render a
                         live or finished stream with `gcs top`
    --heartbeat-every S  heartbeat cadence in simulated time units
                         (default: horizon / 20)
    --deterministic-heartbeat
                         zero the wall-clock heartbeat fields and omit the
                         parallel summary fields, making the stream a pure
                         function of the simulation (byte-identical across
                         seeds-equal runs at any --threads value)
    --profile            time the engine's event-loop phases (protocol /
                         delay / snapshot) and print the breakdown; timing
                         is observational — all outputs stay byte-identical.
                         With --threads it adds window/replay/idle counters
    --profile-json FILE|-  write the same accounting as one `gcs-profile/v1`
                         JSON object (`-` = stdout); see docs/TRACE_FORMAT.md
    --kappa-factor F     scale κ by F, bypassing the Eq. (4) validation
                         (with F < 1 and --watchdog: demonstrates the
                         invariant violation the paper predicts)

FLIGHT RECORDER (always armed):
    Every run records its recent events into a bounded in-memory ring of
    compact binary frames (a few MiB, zero steady-state allocation). The
    window is dumped automatically on a watchdog trip (to
    dumps/recorder-trip.jsonl) or an engine panic
    (dumps/recorder-panic.jsonl; the dumps/ directory is created on
    demand and git-ignored), and on request:
    --dump-recorder FILE dump the recorder window after the run (and use
                         FILE for trip/panic dumps too). A .jsonl path
                         gets the standard event-log format (works with
                         `gcs trace` and replay-check); a .gcsrec or .bin
                         path gets raw `GCSREC01` binary frames, which
                         `gcs trace` also reads directly
    --skew-field FILE|-  stream windowed per-edge skew aggregates as
                         `gcs-skewfield/v1` JSONL (`-` = stdout); render
                         with `gcs top`. Deterministic at any --threads
    --skew-field-every S skew-field window length in simulated time
                         (default: horizon / 20)

    Every observer runs under --threads K>1: the parallel driver replays
    per-event engine state at each window barrier, so --trace, --metrics,
    --watchdog and --heartbeat produce results identical to --threads 1
    (property-tested; see docs/PARALLEL.md). Without any observer the
    engine skips per-event sampling and the skew rows report the state at
    the horizon, not the running maximum.
";

const SWEEP_USAGE: &str = "\
gcs sweep — run a parameter grid on a parallel worker pool

The grid is the cross product of all axes; each combination is one
independent job with a fresh engine and observability stack. Jobs run on a
worker pool with per-job panic isolation; results are aggregated and
emitted in deterministic job order, so CSV/JSONL output is byte-identical
at any --jobs value.

USAGE:
    gcs sweep [--spec FILE] [--topologies LIST] [--algos LIST] [--eps LIST]
              [--t LIST] [--sigma LIST] [--delays LIST] [--rates LIST]
              [--chaos LIST] [--seeds N | A..B] [--horizon H]
              [--horizon-per-d X] [--watchdog] [--jobs N] [--dry-run]
              [--csv FILE] [--jsonl FILE]

AXES (comma-separated lists; defaults in parentheses):
    --topologies LIST    topology specs            (path:16)
    --algos LIST         algorithm names           (aopt)
    --eps LIST           drift bounds ε̂            (0.01)
    --t LIST             delay bounds 𝒯̂            (0.1)
    --sigma LIST         σ values or `recommended` (recommended)
    --delays LIST        delay-model specs         (uniform)
    --rates LIST         rate-schedule specs       (walk)
    --chaos LIST         fault schedules: `none`, inline clause lists, or
                         `*.chaos` files           (none)
    --seeds N | A..B     seed count or range       (0..1)
    --horizon H          base horizon per job      (60)
    --horizon-per-d X    extra horizon per D·𝒯̂     (0)
    --watchdog           attach the invariant watchdog to every job

EXECUTION:
    --spec FILE          read axes from a `key = value` spec file first;
                         explicit flags override file entries
    --jobs N             worker threads (default: available parallelism)
    --dry-run            enumerate the expanded jobs without running them
    --csv FILE           write one CSV row per job, in job order
    --jsonl FILE         write one JSON line per job plus a final summary
                         line, in job order (replay-check-able)
    --progress           live progress line on stderr (done/total, ETA);
                         stdout and all files stay byte-identical
    --profile            print the pool's wall-time accounting (per-job
                         mean/max, worker utilization) after the aggregate
    --heartbeat FILE|-   stream one `gcs-heartbeat/v1` sweep record per
                         completed job (`-` = stdout); render with `gcs top`
    --heartbeat-every N  emit every N-th completed job only (default 1;
                         the final job always emits)
    --deterministic-heartbeat
                         zero the wall-clock heartbeat fields; the stream
                         is then byte-identical at any --jobs value

EXAMPLES:
    gcs sweep --topologies path:9,path:17,path:33 --eps 0.02 --t 0.25 \\
              --delays directional --rates distsplit --seeds 4 --jobs 8
    gcs sweep --spec examples/sweeps/f4.sweep --csv f4.csv --jsonl f4.jsonl
    gcs sweep --topologies er:24:0.2 --seeds 0..32 --dry-run
";

const SERVE_USAGE: &str = "\
gcs serve — admission-controlled simulation daemon

One warm process multiplexing run, sweep, and chaos-batch jobs over a
hand-rolled HTTP/1.1 + JSONL wire (no dependencies). Submissions are
canonically hashed; completed jobs freeze into immutable artifacts in a
byte-budgeted LRU cache, so resubmitting a spec replays the frozen bytes
without touching the engine. Past the live-job watermark the daemon sheds
load with `429` + `Retry-After`; a per-session round-robin keeps one
client's 10k-job sweep from starving interactive runs. Responses for the
same spec are byte-identical (de-chunked) across cache hit vs miss,
--jobs counts, and concurrent subscribers. See docs/SERVE.md for the
wire format.

USAGE:
    gcs serve [--addr HOST:PORT] [--jobs K] [--cache-mb M]
              [--max-live N] [--dump-dir DIR] [--wall-heartbeats]

OPTIONS:
    --addr HOST:PORT   listen address            (default 127.0.0.1:7431;
                       port 0 picks a free port and prints it)
    --jobs K           worker threads            (default: all cores)
    --cache-mb M       result-cache budget, MiB  (default 64)
    --max-live N       admission watermark: live jobs beyond which new
                       submissions get 429       (default 64)
    --dump-dir DIR     flight-recorder dumps from tripped/panicked jobs,
                       one subdirectory per job  (default dumps)
    --wall-heartbeats  real wall-clock fields in heartbeat streams
                       (default: zeroed, so responses are reproducible)

ENDPOINTS (see docs/SERVE.md):
    POST /v1/jobs?kind=run|sweep|chaos-batch[&wait=1]   submit a spec
    GET  /v1/jobs/ID[/results|/heartbeats|/blame]       poll / stream
    GET  /stats        scheduler + cache counters
    GET  /v1/heartbeats[?once=1]                        server event stream
    POST /v1/shutdown  graceful shutdown

EXIT STATUS:
    0  clean shutdown        1  bind or runtime error
";

const SERVE_BENCH_USAGE: &str = "\
gcs serve-bench — hot/cold load generator for the daemon

Submits a working set of distinct sweep specs from concurrent clients
(cold phase: every spec executes), then replays the set (hot phase: every
response must come from the result cache, byte-identical to the cold
body). Writes BENCH_serve.json (`gcs-bench-result/v1`) with throughput,
latency percentiles, cache hit ratio, and the cold-vs-hot speedup.

USAGE:
    gcs serve-bench [--addr HOST:PORT] [--clients C] [--specs S]
                    [--repeat R] [--jobs K] [--quick] [--no-artifact]

OPTIONS:
    --addr HOST:PORT   target an already-running daemon (default: spawn an
                       embedded one for the run)
    --clients C        concurrent client connections (default 8; 4 quick)
    --specs S          distinct specs in the set     (default 24; 8 quick)
    --repeat R         hot replays per spec          (default 4;  2 quick)
    --jobs K           embedded daemon workers       (default: all cores)
    --quick            small grids and working set (CI smoke)
    --no-artifact      print the table only; skip BENCH_serve.json

EXIT STATUS:
    0  ran (and wrote the artifact)   1  request failures or identity
                                         violations
";

const TRACE_USAGE: &str = "\
gcs trace — forensics over a recorded event stream

USAGE:
    gcs trace summary FILE.jsonl
    gcs trace blame   FILE.jsonl [--global] [--end T] [--max-hops N]
    gcs trace export  FILE.jsonl --chrome [--out FILE.json]

Reads a `gcs run --events` JSONL log — or a binary `GCSREC01` flight-
recorder dump (`gcs run --dump-recorder FILE.gcsrec`), detected by its
magic bytes — reconstructs every node's exact hardware and logical clock
plus the happened-before DAG over all messages, and answers provenance
queries offline — no re-simulation.

ACTIONS:
    summary    per-node / per-edge event, delivery, and latency statistics
    blame      locate the peak-skew instant, then walk the causal chain of
               messages that produced it (the Theorem 5.10 wavefront),
               annotated with reconstructed clock readings
    export     convert the stream to another tool's format

OPTIONS (blame):
    --global       explain the peak *global* skew pair instead of the
                   peak local (neighbour) pair
    --end T        also evaluate skew at real time T (pass the run horizon
                   to include skew still growing at end of stream)
    --max-hops N   cap the causal walk length             (default 64)

OPTIONS (export):
    --chrome       Chrome trace-event / Perfetto JSON: one track per node
                   (load in chrome://tracing or ui.perfetto.dev)
    --out FILE     write to FILE instead of stdout

See docs/TRACE_FORMAT.md for the JSONL schema and the Chrome mapping.

EXAMPLE:
    gcs run --topology path:8 --delays wavefront --events run.jsonl
    gcs trace blame run.jsonl --end 120
";

const TOP_USAGE: &str = "\
gcs top — render a heartbeat stream as a status report

USAGE:
    gcs top FILE.jsonl
    gcs run --heartbeat - [...] | gcs top -

Reads a `gcs-heartbeat/v1` JSONL stream (written by `gcs run --heartbeat`
or `gcs sweep --heartbeat`; `-` = stdin) and renders the most recent run
beats, the final run / parallel summary, and sweep progress. Malformed,
truncated, or foreign lines are skipped, not fatal, so it works on live,
still-growing files. See docs/TRACE_FORMAT.md for the record schema.
";

const BENCH_USAGE: &str = "\
gcs bench — compare committed benchmark artifacts

USAGE:
    gcs bench diff OLD.json NEW.json [--tolerance F]

Compares two `gcs-bench-result/v1` artifacts (the repository's
BENCH_*.json files) metric by metric and reports the relative change.
The metric family — the segment before the first `/` — decides the
direction: `events_per_sec`, `speedup` and `throughput` regress when
they drop; `wall_seconds`, `median_seconds`, `allocs_per_event`,
`allocs_per_event_steady` and `overhead_ratio` regress when they rise;
unknown families are reported but never gate. `speedup/*` metrics are
skipped when either artifact was recorded on a single-core host, and
config drift between the artifacts is noted but does not gate.

OPTIONS:
    --tolerance F   relative change tolerated before a metric counts as
                    a regression (default 0.05 = 5%)

EXIT CODES:
    0    no regressions
    1    at least one metric regressed beyond the tolerance
    2    usage, I/O, or artifact-format error
";

const REPLAY_USAGE: &str = "\
gcs replay-check — diff two JSONL logs (determinism check)

USAGE:
    gcs replay-check FILE1.jsonl FILE2.jsonl

Compares line-by-line and reports the first divergence with surrounding
context from both streams. Works on `gcs run --events` logs and
`gcs sweep --jsonl` outputs alike.

EXIT CODES:
    0    streams are byte-identical
    1    usage or I/O error
    2    streams diverge
";

const LB_GLOBAL_USAGE: &str = "\
gcs lb-global — the Theorem 7.2 forced-global-skew construction

USAGE:
    gcs lb-global [--d D] [--eps E] [--t T] [--t-hat TH]

OPTIONS:
    --d D        path diameter                  (default 8)
    --eps E      drift bound ε̂                  (default 0.05)
    --t T        true delay bound 𝒯             (default 0.5)
    --t-hat TH   believed delay bound 𝒯̂         (default 2𝒯)
";

const LB_LOCAL_USAGE: &str = "\
gcs lb-local — the Theorem 7.7 forced-local-skew construction

USAGE:
    gcs lb-local [--b B] [--stages S] [--eps E] [--t T] [--algo NAME]

OPTIONS:
    --b B         branching factor               (default 4)
    --stages S    number of amplification stages (default 2)
    --eps E       drift bound ε̂                  (default 0.2)
    --t T         delay bound 𝒯                  (default 1.0)
    --algo NAME   nosync (default) | aopt | jump
";

const CHAOS_USAGE: &str = "\
gcs chaos — seeded fault-injection scenarios with an invariant oracle

Scenarios are `.chaos` documents (see docs/CHAOS.md): topology, algorithm,
substrate specs, a seed, and a schedule of timed fault clauses compiled
onto the delay model. Every scenario is deterministic — its outcome is a
pure function of the document, at any thread count — and the invariant
watchdog (Conditions (1)/(2), Definition 5.6) is the online oracle. A
violation is *expected* when an out-of-model clause (a rate outside the
drift bounds, a clog beyond 𝒯̂, a partition, a crash) allows it; otherwise
it is a **finding**.

Every scenario runs with the flight recorder armed: when the oracle
trips, `chaos run` dumps the recorder window (the recent causal events)
as FILE.dump.jsonl next to the scenario — or to --dump-recorder PATH —
and `chaos batch --fixtures DIR` attaches a finding-SEED.dump.jsonl for
the shrunk reproducer next to each finding-SEED.chaos fixture. Dumps are
standard event-log JSONL, consumable by `gcs trace summary|blame|export`.

USAGE:
    gcs chaos run FILE.chaos [--threads K] [--dump-recorder PATH]
    gcs chaos batch [--scenarios N] [--start-seed S] [--jobs W]
                    [--threads K] [--no-shrink] [--fixtures DIR]
    gcs chaos shrink FILE.chaos [--out FILE.chaos] [--threads K]
    gcs chaos replay FILE.chaos [--threads K]

SUBCOMMANDS:
    run       execute one scenario and print the oracle's verdict
    batch     run N seed-randomized scenarios on the worker pool; shrink
              every finding to a minimal reproducer `.chaos` fixture with
              a one-command repro line
    shrink    minimize a violating scenario — delta-debug whole clauses,
              halve durations, bisect windows, trim the horizon — until
              locally minimal; same input → byte-identical output
    replay    re-run a fixture and verify it reproduces its recorded
              violation (kind, node, and time must match exactly)

OPTIONS:
    --scenarios N     scenarios per batch                    (default 1000)
    --start-seed S    seed of the first scenario             (default 1)
    --jobs W          pool workers (default: available parallelism)
    --threads K       engine threads per scenario            (default 1)
    --no-shrink       report findings without minimizing them
    --fixtures DIR    write finding fixtures into DIR instead of printing
                      the minimal documents to stdout
    --out FILE        where shrink writes the reproducer
                      (default: INPUT with a .min.chaos suffix)

EXIT STATUS:
    0  no findings (batch) / reproduced (replay) / ran (run, shrink)
    1  findings or failures (batch), violation mismatch (replay),
       unexpected violation (run)
    2  usage or execution errors
";

/// Every subcommand with its usage text, in help-listing order.
const COMMANDS: &[(&str, &str)] = &[
    ("bounds", BOUNDS_USAGE),
    ("run", RUN_USAGE),
    ("sweep", SWEEP_USAGE),
    ("chaos", CHAOS_USAGE),
    ("serve", SERVE_USAGE),
    ("serve-bench", SERVE_BENCH_USAGE),
    ("trace", TRACE_USAGE),
    ("top", TOP_USAGE),
    ("bench", BENCH_USAGE),
    ("replay-check", REPLAY_USAGE),
    ("lb-global", LB_GLOBAL_USAGE),
    ("lb-local", LB_LOCAL_USAGE),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    };
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let Some((_, usage)) = COMMANDS.iter().find(|(name, _)| name == command) else {
        let names: Vec<&str> = COMMANDS.iter().map(|(name, _)| *name).collect();
        eprintln!("error: unknown command `{command}`\n");
        eprintln!("available commands: {}", names.join(", "));
        eprintln!("run `gcs <command> --help` for options, or `gcs --help` for the overview.");
        return ExitCode::FAILURE;
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        print!("{usage}");
        return ExitCode::SUCCESS;
    }
    // replay-check distinguishes "streams diverge" (exit 2) from usage and
    // I/O errors (exit 1) so scripts can branch on the comparison itself.
    if command == "replay-check" {
        return match cmd_replay_check(rest) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(2),
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
        };
    }
    // bench diff distinguishes "a metric regressed" (exit 1) from usage
    // and artifact-format errors (exit 2) so CI can gate on the
    // comparison itself.
    if command == "bench" {
        return match cmd_bench(rest) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        };
    }
    // chaos distinguishes "findings / replay mismatch" (exit 1) from
    // usage and execution errors (exit 2) so CI can gate on the oracle
    // verdict itself.
    if command == "chaos" {
        return match cmd_chaos(rest) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
        };
    }
    // trace and top take positional arguments, not --key pairs.
    let result = if command == "trace" {
        cmd_trace(rest)
    } else if command == "top" {
        cmd_top(rest)
    } else {
        let opts = match Options::parse(rest) {
            Ok(opts) => opts,
            Err(message) => {
                eprintln!("error: {message}\n");
                eprint!("{usage}");
                return ExitCode::FAILURE;
            }
        };
        match command.as_str() {
            "bounds" => cmd_bounds(&opts),
            "run" => cmd_run(&opts),
            "sweep" => cmd_sweep(&opts),
            "serve" => cmd_serve(&opts),
            "serve-bench" => cmd_serve_bench(&opts),
            "lb-global" => cmd_lb_global(&opts),
            "lb-local" => cmd_lb_local(&opts),
            _ => unreachable!("command membership checked above"),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--key value` options.
struct Options {
    values: HashMap<String, String>,
}

impl Options {
    /// Options that are pure flags: present or absent, no value.
    const FLAGS: &'static [&'static str] = &[
        "watchdog",
        "dry-run",
        "profile",
        "progress",
        "global",
        "chrome",
        "allow-sequential-fallback",
        "no-shrink",
        "deterministic-heartbeat",
        "quick",
        "wall-heartbeats",
        "no-artifact",
    ];

    fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut iter = args.iter();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected an option, got `{key}`"));
            };
            if Self::FLAGS.contains(&name) {
                values.insert(name.to_string(), String::new());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(format!("option `{key}` needs a value"));
            };
            values.insert(name.to_string(), value.clone());
        }
        Ok(Options { values })
    }

    fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map_or(default, String::as_str)
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: `{v}` is not a number")),
        }
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: `{v}` is not an integer")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: `{v}` is not an integer")),
        }
    }
}

fn cmd_bounds(opts: &Options) -> Result<(), String> {
    let eps = opts.f64_or("eps", 1e-3)?;
    let t = opts.f64_or("t", 0.01)?;
    let d = opts.usize_or("d", 32)? as u32;
    let params = match opts.values.get("sigma") {
        Some(s) => {
            let sigma: u32 = s.parse().map_err(|_| "bad --sigma".to_string())?;
            Params::with_sigma(eps, t, sigma)
        }
        None => Params::recommended(eps, t),
    }
    .map_err(|e| e.to_string())?;
    let (alpha, beta) = params.rate_envelope();
    let mut table = Table::new(vec!["quantity", "value"]);
    table.row(vec!["ε̂ (drift bound)".into(), format!("{eps}")]);
    table.row(vec!["𝒯̂ (delay bound)".into(), format!("{t}")]);
    table.row(vec![
        "μ (fast-mode boost)".into(),
        format!("{:.6}", params.mu()),
    ]);
    table.row(vec![
        "H₀ (send period)".into(),
        format!("{:.6}", params.h0()),
    ]);
    table.row(vec!["κ (quantum)".into(), format!("{:.6}", params.kappa())]);
    table.row(vec!["σ (log base)".into(), params.sigma().to_string()]);
    table.row(vec!["α (min logical rate)".into(), format!("{alpha:.6}")]);
    table.row(vec!["β (max logical rate)".into(), format!("{beta:.6}")]);
    table.row(vec![
        format!("𝒢 global bound (D = {d})"),
        format!("{:.6}", params.global_skew_bound(d)),
    ]);
    table.row(vec![
        format!("local bound (D = {d})"),
        format!("{:.6}", params.local_skew_bound(d)),
    ]);
    table.row(vec![
        "amortized msgs/node/𝒯̂".into(),
        format!("{:.4}", t / params.h0()),
    ]);
    println!("{table}");
    Ok(())
}

/// The `gcs run` observability pipeline: one statically composed
/// [`EventSink`] feeding every requested consumer from a single event
/// stream and a single per-event snapshot pass.
struct RunSinks {
    observer: SkewObserver,
    /// The always-armed flight recorder: every event is encoded into a
    /// bounded ring of binary frames, dumped on trip/panic/request.
    recorder: RecorderSink,
    /// Where `--dump-recorder` wants the window written (also used for
    /// trip and panic dumps when present).
    dump_recorder: Option<String>,
    trace: Option<(String, ClockTrace)>,
    events: Option<(String, JsonlWriter<BufWriter<File>>)>,
    metrics: Option<(String, MetricsSink)>,
    watchdog: Option<InvariantWatchdog>,
    heartbeat: Option<Heartbeat>,
    skew_field: Option<SkewField>,
    /// Per-cause drop split for heartbeat `beat` records.
    dropped_model: u64,
    dropped_faults: u64,
    /// Sample engine state after every event. Under `--threads K>1` this is
    /// served by the parallel driver's barrier-time snapshot replay, which
    /// reconstructs the exact sequential per-event state; without any
    /// observer the run skips it and the observer sees a single snapshot
    /// at the horizon instead.
    per_event: bool,
}

/// Live `--heartbeat` state carried through the run by [`RunSinks`]: the
/// emitter plus the counters a beat reports.
struct Heartbeat {
    path: String,
    emitter: HeartbeatEmitter<Box<dyn Write + Send>>,
    deterministic: bool,
    events: u64,
    timer_sets: u64,
    timer_fires: u64,
    timer_cancels: u64,
    last_queue_depth: u64,
    /// First write failure; surfaced after the run (a sink cannot return
    /// errors mid-simulation).
    error: Option<String>,
}

impl Heartbeat {
    fn input(
        &self,
        t: f64,
        queue_depth: u64,
        observer: &SkewObserver,
        watchdog: Option<&InvariantWatchdog>,
        dropped: (u64, u64),
    ) -> BeatInput {
        BeatInput {
            t,
            events: self.events,
            queue_depth,
            timers_armed: self
                .timer_sets
                .saturating_sub(self.timer_fires)
                .saturating_sub(self.timer_cancels),
            dropped_model: dropped.0,
            dropped_faults: dropped.1,
            skew_global: Some(observer.worst_global()),
            skew_local: Some(observer.worst_local()),
            watchdog: match watchdog {
                None => WatchdogStatus::Off,
                Some(w) if w.tripped() => WatchdogStatus::Tripped,
                Some(_) => WatchdogStatus::Ok,
            },
        }
    }
}

/// Live `--skew-field` state carried through the run by [`RunSinks`].
struct SkewField {
    path: String,
    writer: SkewFieldWriter<Box<dyn Write + Send>>,
    /// First write failure; surfaced after the run (a sink cannot return
    /// errors mid-simulation).
    error: Option<String>,
}

/// Opens a heartbeat sink: `-` is stdout, anything else a fresh file.
fn heartbeat_writer(path: &str) -> Result<Box<dyn Write + Send>, String> {
    if path == "-" {
        Ok(Box::new(std::io::stdout()))
    } else {
        let file =
            File::create(path).map_err(|e| format!("cannot create heartbeat log {path}: {e}"))?;
        Ok(Box::new(BufWriter::new(file)))
    }
}

/// Default location for automatic recorder dumps (watchdog trip, engine
/// panic): `dumps/NAME`, creating the git-ignored directory on demand so
/// repeated trips never litter the working-tree root. Explicit
/// `--dump-recorder` paths are used verbatim and skip this.
fn default_dump_path(name: &str) -> String {
    if let Err(e) = std::fs::create_dir_all("dumps") {
        // Fall back to the cwd rather than losing the forensic artifact.
        eprintln!("warning: cannot create dumps/: {e}; writing dump to the current directory");
        return name.to_string();
    }
    format!("dumps/{name}")
}

/// Writes a flight-recorder window to `path`: raw `GCSREC01` frames when
/// the extension says binary (`.gcsrec` / `.bin`), the standard JSONL
/// event-log format (consumable by `gcs trace` and `gcs replay-check`)
/// otherwise. Returns the number of events in the window.
fn write_recorder_dump(path: &str, recorder: &RecorderSink) -> Result<usize, String> {
    let fail = |e: std::io::Error| format!("cannot write recorder dump {path}: {e}");
    if path.ends_with(".gcsrec") || path.ends_with(".bin") {
        std::fs::write(path, recorder.window_frames()).map_err(fail)?;
        Ok(recorder.window_len())
    } else {
        let events = recorder.window_events();
        write_events_jsonl(path, &events).map_err(fail)?;
        Ok(events.len())
    }
}

/// Writes events in the standard JSONL event-log format.
fn write_events_jsonl(path: &str, events: &[EngineEvent]) -> std::io::Result<()> {
    let mut out = String::new();
    for event in events {
        out.push_str(&encode_event(event));
        out.push('\n');
    }
    std::fs::write(path, out)
}

impl RunSinks {
    fn new(
        graph: &Graph,
        horizon: f64,
        opts: &Options,
        params: Params,
        per_event: bool,
    ) -> Result<Self, String> {
        let trace = opts
            .values
            .get("trace")
            .map(|path| (path.clone(), ClockTrace::new(graph.len(), horizon / 500.0)));
        let events = match opts.values.get("events") {
            Some(path) => {
                let file = File::create(path)
                    .map_err(|e| format!("cannot create event log {path}: {e}"))?;
                Some((path.clone(), JsonlWriter::new(BufWriter::new(file))))
            }
            None => None,
        };
        let metrics = opts
            .values
            .get("metrics")
            .map(|path| (path.clone(), MetricsSink::new()));
        let watchdog = if opts.flag("watchdog") {
            let eps = opts.f64_or("eps", 1e-2)?;
            let drift = DriftBounds::new(eps).map_err(|e| e.to_string())?;
            Some(InvariantWatchdog::new(graph, params, drift))
        } else {
            None
        };
        let heartbeat = match opts.values.get("heartbeat") {
            Some(path) => {
                let every = opts.f64_or("heartbeat-every", horizon / 20.0)?;
                if !(every > 0.0 && every.is_finite()) {
                    return Err(format!(
                        "option --heartbeat-every: cadence must be positive, got `{every}`"
                    ));
                }
                let deterministic = opts.flag("deterministic-heartbeat");
                Some(Heartbeat {
                    path: path.clone(),
                    emitter: HeartbeatEmitter::new(
                        heartbeat_writer(path)?,
                        every,
                        0.0,
                        deterministic,
                    ),
                    deterministic,
                    events: 0,
                    timer_sets: 0,
                    timer_fires: 0,
                    timer_cancels: 0,
                    last_queue_depth: 0,
                    error: None,
                })
            }
            None => None,
        };
        let skew_field = match opts.values.get("skew-field") {
            Some(path) => {
                let edges: Vec<(usize, usize)> =
                    graph.edges().map(|(a, b)| (a.index(), b.index())).collect();
                if edges.is_empty() {
                    return Err("--skew-field needs a topology with at least one edge".to_string());
                }
                let every = opts.f64_or("skew-field-every", horizon / 20.0)?;
                if !(every > 0.0 && every.is_finite()) {
                    return Err(format!(
                        "option --skew-field-every: window must be positive, got `{every}`"
                    ));
                }
                Some(SkewField {
                    path: path.clone(),
                    writer: SkewFieldWriter::new(heartbeat_writer(path)?, edges, every, 0.0),
                    error: None,
                })
            }
            None => None,
        };
        Ok(RunSinks {
            observer: SkewObserver::new(graph),
            recorder: RecorderSink::new(),
            dump_recorder: opts.values.get("dump-recorder").cloned(),
            trace,
            events,
            metrics,
            watchdog,
            heartbeat,
            skew_field,
            dropped_model: 0,
            dropped_faults: 0,
            per_event,
        })
    }
}

impl EventSink for RunSinks {
    fn enabled(&self) -> bool {
        // The flight recorder is always armed, so every run records.
        true
    }

    fn record(&mut self, event: &EngineEvent) {
        self.recorder.record(event);
        if let EngineEvent::Drop { cause, .. } = event {
            match cause {
                DropCause::Model => self.dropped_model += 1,
                DropCause::Fault => self.dropped_faults += 1,
            }
        }
        if let Some((_, w)) = self.events.as_mut() {
            w.record(event);
        }
        if let Some((_, m)) = self.metrics.as_mut() {
            m.record(event);
        }
        if let Some(w) = self.watchdog.as_mut() {
            w.record(event);
        }
        if let Some(hb) = self.heartbeat.as_mut() {
            hb.events += 1;
            match event {
                EngineEvent::TimerSet { .. } => hb.timer_sets += 1,
                EngineEvent::TimerFire { .. } => hb.timer_fires += 1,
                EngineEvent::TimerCancel { .. } => hb.timer_cancels += 1,
                _ => {}
            }
        }
    }

    fn wants_snapshots(&self) -> bool {
        self.per_event // the skew observer samples per-event state
    }

    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        self.observer.snapshot(t, clocks, queue_depth);
        if let Some((_, trace)) = self.trace.as_mut() {
            trace.snapshot(t, clocks, queue_depth);
        }
        if let Some((_, m)) = self.metrics.as_mut() {
            m.snapshot(t, clocks, queue_depth);
        }
        if let Some(w) = self.watchdog.as_mut() {
            w.snapshot(t, clocks, queue_depth);
        }
        if let Some(sf) = self.skew_field.as_mut() {
            if sf.error.is_none() {
                if let Err(e) = sf.writer.observe(t, clocks) {
                    sf.error = Some(format!("skew-field write failed: {e}"));
                }
            }
        }
        if let Some(hb) = self.heartbeat.as_mut() {
            hb.last_queue_depth = queue_depth as u64;
            if hb.emitter.due(t) && hb.error.is_none() {
                let input = hb.input(
                    t,
                    queue_depth as u64,
                    &self.observer,
                    self.watchdog.as_ref(),
                    (self.dropped_model, self.dropped_faults),
                );
                if let Err(e) = hb.emitter.beat(&input) {
                    hb.error = Some(format!("heartbeat write failed: {e}"));
                }
            }
        }
    }
}

/// What one `gcs run` execution produced, after all file sinks are closed.
struct RunOutput {
    observer: SkewObserver,
    stats: MessageStats,
    metrics: Option<(String, MetricsSink)>,
    trip: Option<WatchdogTrip>,
    profile: Option<EngineProfile>,
    /// False when the observer only saw the horizon snapshot (`--threads`):
    /// its "worst" skews are then end-of-run values, not running maxima.
    skews_are_maxima: bool,
}

/// How to execute a run: how far, on how many threads, timed or not.
#[derive(Clone, Copy)]
struct RunExec {
    horizon: f64,
    profiling: bool,
    threads: usize,
}

fn run_any<P, D>(
    graph: Graph,
    protocols: Vec<P>,
    delay: D,
    schedules: Vec<RateSchedule>,
    sinks: RunSinks,
    exec: RunExec,
) -> Result<RunOutput, String>
where
    P: Protocol + Send,
    P::Msg: Send,
    D: DelayModel + Clone + Send,
{
    let RunExec {
        horizon,
        profiling,
        threads,
    } = exec;
    let mut engine = Engine::builder(graph)
        .protocols(protocols)
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(sinks)
        .profiling(profiling)
        .build();
    engine.wake_all_at(0.0);
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if threads > 1 {
            engine.run_until_threaded(horizon, threads);
        } else {
            engine.run_until(horizon);
        }
    }));
    if let Err(payload) = run {
        // The engine panicked mid-run: salvage the flight-recorder window
        // before propagating, so the crash leaves a forensic artifact.
        let sinks = engine.into_sink();
        let path = sinks
            .dump_recorder
            .clone()
            .unwrap_or_else(|| default_dump_path("recorder-panic.jsonl"));
        match write_recorder_dump(&path, &sinks.recorder) {
            Ok(count) => eprintln!("panic: recorder dump written to {path} ({count} events)"),
            Err(e) => eprintln!("panic: {e}"),
        }
        std::panic::resume_unwind(payload);
    }
    let stats = engine.message_stats().clone();
    let profile = engine.profile().cloned();
    let clocks = engine.logical_values();
    let mut sinks = engine.into_sink();
    if !sinks.per_event {
        // The parallel driver skipped per-event sampling; give the observer
        // (and the report) at least the final state.
        sinks.observer.snapshot(horizon, &clocks, 0);
    }
    if let Some((path, trace)) = sinks.trace.take() {
        trace
            .write_csv(&path)
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        println!("trace written to {path} ({} rows)", trace.len());
    }
    if let Some((path, writer)) = sinks.events.take() {
        let written = writer.written();
        writer
            .finish()
            .map_err(|e| format!("cannot write event log to {path}: {e}"))?;
        println!("event log written to {path} ({written} events)");
    }
    if let Some((_, m)) = sinks.metrics.as_mut() {
        m.flush_rate_window(horizon);
    }
    if let Some(mut sf) = sinks.skew_field.take() {
        if let Some(e) = sf.error.take() {
            return Err(e);
        }
        sf.writer
            .finish()
            .map_err(|e| format!("skew-field write failed: {e}"))?;
        if sf.path != "-" {
            println!("skew-field log written to {}", sf.path);
        }
    }
    if let Some(hb) = sinks.heartbeat.as_mut() {
        // Final summary record. The parallel shares are wall-clock
        // measurements, so deterministic streams omit them (they would
        // differ across thread counts and machines).
        let input = hb.input(
            horizon,
            hb.last_queue_depth,
            &sinks.observer,
            sinks.watchdog.as_ref(),
            (sinks.dropped_model, sinks.dropped_faults),
        );
        let par = (!hb.deterministic).then(|| {
            let wall = profile.as_ref().map_or(0.0, |p| p.par_wall.as_secs_f64());
            let share = |d: std::time::Duration| {
                if wall > 0.0 {
                    d.as_secs_f64() / wall
                } else {
                    0.0
                }
            };
            ParStats {
                threads: threads as u64,
                windows: profile.as_ref().map_or(0, |p| p.par_windows),
                replay_share: profile.as_ref().map_or(0.0, |p| share(p.par_replay)),
                idle_share: profile.as_ref().map_or(0.0, |p| share(p.par_idle)),
            }
        });
        if let Err(e) = hb.emitter.summary(&input, par.as_ref()) {
            hb.error
                .get_or_insert(format!("heartbeat write failed: {e}"));
        }
        if let Some(e) = hb.error.take() {
            return Err(e);
        }
        if hb.path != "-" {
            println!("heartbeat log written to {}", hb.path);
        }
    }
    let trip = sinks.watchdog.as_ref().and_then(|w| w.trip().cloned());
    // Dump the flight-recorder window when asked (--dump-recorder) or when
    // the watchdog tripped (to the requested path, else a default under
    // dumps/), so every violation leaves a trace-able artifact without
    // littering the working-tree root.
    let dump_path = match (&sinks.dump_recorder, &trip) {
        (Some(path), _) => Some(path.clone()),
        (None, Some(_)) => Some(default_dump_path("recorder-trip.jsonl")),
        (None, None) => None,
    };
    if let Some(path) = dump_path {
        let count = write_recorder_dump(&path, &sinks.recorder)?;
        println!(
            "recorder dump written to {path} ({count} of {} recorded events)",
            sinks.recorder.recorded()
        );
    }
    Ok(RunOutput {
        observer: sinks.observer,
        stats,
        metrics: sinks.metrics,
        trip,
        profile,
        skews_are_maxima: sinks.per_event,
    })
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let eps = opts.f64_or("eps", 1e-2)?;
    let t = opts.f64_or("t", 0.1)?;
    let horizon = opts.f64_or("horizon", 120.0)?;
    let seed = opts.u64_or("seed", 42)?;
    let graph = parse_topology(opts.str_or("topology", "path:16"), seed)?;
    let n = graph.len();
    let d = graph.diameter();
    let drift = DriftBounds::new(eps).map_err(|e| e.to_string())?;
    let mut params = Params::recommended(eps, t).map_err(|e| e.to_string())?;
    if let Some(factor) = opts.values.get("kappa-factor") {
        let factor: f64 = factor
            .parse()
            .map_err(|_| format!("option --kappa-factor: `{factor}` is not a number"))?;
        params = params.with_kappa_factor_unchecked(factor);
        println!(
            "κ scaled by {factor}: κ = {:.6} (Eq. 4 minimum: {:.6})",
            params.kappa(),
            params.min_kappa()
        );
    }
    let algo = opts.str_or("algo", "aopt");

    // The sweep crate owns the spec mini-language; `run` is a one-job
    // sweep with extra observability attached.
    let (delay, min_horizon) = build_delay(opts.str_or("delays", "uniform"), &graph, t, eps, seed)?;
    let horizon = horizon.max(min_horizon);
    let schedules = build_rates(opts.str_or("rates", "walk"), &graph, drift, horizon, seed)?;

    let mut threads = match opts.values.get("threads") {
        None => 1,
        Some(v) if v == "auto" => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(v) => match v.parse::<usize>() {
            Ok(k) if k >= 1 => k,
            _ => return Err(format!("option --threads: `{v}` is not a count or `auto`")),
        },
    };
    // Observers (--trace/--metrics/--watchdog/--heartbeat) all run under
    // --threads K>1: the parallel driver reconstructs per-event snapshots
    // at the window barrier. The one thing it cannot run in parallel is a
    // delay model with no positive delay lower bound (no lookahead), so
    // that combination fails fast instead of silently changing the
    // execution mode.
    let needs_snapshots = ["trace", "metrics", "watchdog", "heartbeat", "skew-field"]
        .iter()
        .any(|key| opts.values.contains_key(*key));
    if threads > 1 && !delay.lookahead_at(0.0).is_some_and(|la| la.floor > 0.0) {
        let model = opts.str_or("delays", "uniform");
        if opts.flag("allow-sequential-fallback") {
            eprintln!(
                "--threads {threads}: delay model `{model}` advertises no positive delay \
                 lower bound; running sequentially (--allow-sequential-fallback)"
            );
            threads = 1;
        } else {
            return Err(format!(
                "--threads {threads}: delay model `{model}` advertises no positive delay \
                 lower bound, so the lookahead-windowed parallel driver cannot execute \
                 it; drop --threads or pass --allow-sequential-fallback to accept a \
                 sequential run"
            ));
        }
    }
    let sinks = RunSinks::new(
        &graph,
        horizon,
        opts,
        params,
        threads == 1 || needs_snapshots,
    )?;

    let exec = RunExec {
        horizon,
        // The heartbeat summary reports profile-derived parallel shares,
        // so a non-deterministic heartbeat turns profiling on (profiling
        // is observational; outputs stay byte-identical).
        profiling: opts.flag("profile")
            || opts.values.contains_key("profile-json")
            || (opts.values.contains_key("heartbeat") && !opts.flag("deterministic-heartbeat")),
        threads,
    };
    macro_rules! dispatch {
        ($protocols:expr) => {
            run_any(graph.clone(), $protocols, delay, schedules, sinks, exec)?
        };
    }
    let mut output = match algo {
        "aopt" => dispatch!(vec![AOpt::new(params); n]),
        "jump" => dispatch!(vec![AOptJump::new(params); n]),
        "mingap" => dispatch!(vec![MinGapAOpt::new(params); n]),
        "envelope" => dispatch!(vec![EnvelopeAOpt::new(params); n]),
        "max" => dispatch!(vec![MaxAlgorithm::new(1.0); n]),
        "midpoint" => dispatch!(vec![MidpointAlgorithm::new(params.h0(), params.mu()); n]),
        "nosync" => dispatch!(vec![NoSync; n]),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let observer = &output.observer;
    let stats = &output.stats;

    let max_degree = graph
        .nodes()
        .map(|v| graph.neighbors(v).len())
        .max()
        .unwrap_or(0);
    let report = ComplexityReport::from_stats(stats, &params, n, max_degree, d, horizon);

    let mut table = Table::new(vec!["quantity", "value"]);
    table.row(vec!["algorithm".into(), algo.to_string()]);
    table.row(vec!["nodes / diameter".into(), format!("{n} / {d}")]);
    let (global_label, local_label) = if output.skews_are_maxima {
        ("worst global skew", "worst local skew")
    } else {
        ("global skew at horizon", "local skew at horizon")
    };
    let (g_ahead, g_behind) = observer.worst_global_pair();
    table.row(vec![
        global_label.into(),
        format!(
            "{:.6}  (v{g_ahead} − v{g_behind} at t = {:.2})",
            observer.worst_global(),
            observer.worst_global_at()
        ),
    ]);
    let (l_ahead, l_behind) = observer.worst_local_pair();
    table.row(vec![
        local_label.into(),
        format!(
            "{:.6}  (v{l_ahead} − v{l_behind} at t = {:.2})",
            observer.worst_local(),
            observer.worst_local_at()
        ),
    ]);
    table.row(vec![
        "A^opt bounds (𝒢 / local)".into(),
        format!(
            "{:.6} / {:.6}",
            params.global_skew_bound(d),
            params.local_skew_bound(d)
        ),
    ]);
    table.row(vec!["send events".into(), stats.send_events.to_string()]);
    table.row(vec![
        "deliveries / dropped".into(),
        format!("{} / {}", stats.deliveries, stats.dropped),
    ]);
    table.row(vec![
        "delivery imbalance (max/mean)".into(),
        format!("{:.3}", report.delivery_imbalance),
    ]);
    println!("{table}");

    if let Some(profile) = &output.profile {
        if opts.flag("profile") {
            println!();
            print!("{profile}");
        }
        if let Some(path) = opts.values.get("profile-json") {
            let json = profile.to_json();
            if path == "-" {
                print!("{json}");
            } else {
                std::fs::write(path, &json)
                    .map_err(|e| format!("cannot write profile JSON to {path}: {e}"))?;
                println!("profile JSON written to {path}");
            }
        }
    }

    if let Some((path, metrics)) = &mut output.metrics {
        let path = path.as_str();
        let json = metrics.registry().to_json();
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write metrics JSON to {path}: {e}"))?;
            println!("\nmetrics snapshot:");
            print!("{}", metrics.render());
            println!("metrics JSON written to {path}");
        }
    }

    match &output.trip {
        Some(trip) => {
            println!();
            print!("{}", trip.render());
            Err("invariant watchdog tripped".to_string())
        }
        None => {
            if opts.flag("watchdog") {
                println!("\nwatchdog: all invariants held");
            }
            Ok(())
        }
    }
}

fn cmd_sweep(opts: &Options) -> Result<(), String> {
    let mut spec = match opts.values.get("spec") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec file {path}: {e}"))?;
            SweepSpec::parse_str(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => SweepSpec::default(),
    };
    // Explicit flags override spec-file entries; flag names are the spec
    // keys (see `SweepSpec::apply`).
    for key in [
        "topologies",
        "algos",
        "eps",
        "t",
        "sigma",
        "delays",
        "rates",
        "chaos",
        "seeds",
        "horizon",
        "horizon-per-d",
    ] {
        if let Some(value) = opts.values.get(key) {
            spec.apply(key, value)?;
        }
    }
    if opts.flag("watchdog") {
        spec.watchdog = true;
    }
    spec.validate()?;
    let jobs = spec.expand();
    let default_workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = opts.usize_or("jobs", default_workers)?.max(1);

    if opts.flag("dry-run") {
        let mut table = Table::new(vec![
            "job", "topology", "algo", "eps", "t", "sigma", "delay", "rates", "chaos", "seed",
        ]);
        for job in &jobs {
            table.row(vec![
                job.index.to_string(),
                job.topology.clone(),
                job.algo.clone(),
                job.eps.to_string(),
                job.t.to_string(),
                job.sigma.map_or_else(|| "rec".into(), |s| s.to_string()),
                job.delay.clone(),
                job.rates.clone(),
                job.chaos.clone(),
                job.seed.to_string(),
            ]);
        }
        println!("{table}");
        println!("{} jobs (dry run; would use {workers} workers)", jobs.len());
        return Ok(());
    }

    let open = |key: &str| -> Result<Option<BufWriter<File>>, String> {
        match opts.values.get(key) {
            Some(path) => File::create(path)
                .map(|f| Some(BufWriter::new(f)))
                .map_err(|e| format!("cannot create {path}: {e}")),
            None => Ok(None),
        }
    };
    let mut csv = open("csv")?;
    let mut jsonl = open("jsonl")?;
    // Sweep heartbeats are paced by completed-job count, not simulated
    // time; the cadence passed to the emitter is unused.
    let mut heartbeat = match opts.values.get("heartbeat") {
        Some(path) => Some(HeartbeatEmitter::new(
            heartbeat_writer(path)?,
            1.0,
            0.0,
            opts.flag("deterministic-heartbeat"),
        )),
        None => None,
    };
    let hb_every = opts.u64_or("heartbeat-every", 1)?.max(1);
    let mut io_error: Option<String> = None;
    if let Some(w) = csv.as_mut() {
        if let Err(e) = writeln!(w, "{}", report::CSV_HEADER) {
            io_error = Some(format!("csv write failed: {e}"));
        }
    }

    println!(
        "sweep: {} jobs on {workers} worker{}",
        jobs.len(),
        if workers == 1 { "" } else { "s" }
    );
    let started = Instant::now();
    // The live progress line goes to stderr only, in completion order;
    // stdout and the CSV/JSONL files stay byte-identical with or without it.
    let progress = opts.flag("progress").then_some(|p: PoolProgress| {
        eprint!(
            "\r[{}/{}] {:.1}s elapsed, ETA {:.1}s   ",
            p.done,
            p.total,
            p.elapsed.as_secs_f64(),
            p.eta().as_secs_f64()
        );
        let _ = std::io::stderr().flush();
    });
    let jobs_total = jobs.len() as u64;
    let mut hb_done: u64 = 0;
    let mut hb_events: u64 = 0;
    let (_, aggregate, pool_stats, deduped) = run_sweep_deduped(
        &jobs,
        workers,
        |job, outcome| {
            if let Some(w) = csv.as_mut() {
                if let Err(e) = writeln!(w, "{}", report::csv_row(job, outcome)) {
                    io_error.get_or_insert(format!("csv write failed: {e}"));
                }
            }
            if let Some(w) = jsonl.as_mut() {
                if let Err(e) = writeln!(w, "{}", report::jsonl_row(job, outcome)) {
                    io_error.get_or_insert(format!("jsonl write failed: {e}"));
                }
            }
            // Emission happens in job-index order (see `run_pool`), so
            // the heartbeat stream is deterministic at any --jobs value.
            if let Some(hb) = heartbeat.as_mut() {
                hb_done += 1;
                if let Some(r) = outcome.completed() {
                    hb_events += r.events_recorded;
                }
                if hb_done.is_multiple_of(hb_every) || hb_done == jobs_total {
                    if let Err(e) = hb.sweep_beat(hb_done, jobs_total, hb_events, &job.label()) {
                        io_error.get_or_insert(format!("heartbeat write failed: {e}"));
                    }
                }
            }
        },
        progress,
    );
    if opts.flag("progress") {
        eprintln!();
    }
    let elapsed = started.elapsed();
    if let Some(w) = jsonl.as_mut() {
        if let Err(e) = writeln!(w, "{}", report::jsonl_summary(&aggregate)) {
            io_error.get_or_insert(format!("jsonl write failed: {e}"));
        }
    }
    for (name, writer) in [("csv", csv), ("jsonl", jsonl)] {
        if let Some(mut w) = writer {
            if let Err(e) = w.flush() {
                io_error.get_or_insert(format!("{name} flush failed: {e}"));
            }
        }
    }
    if let Some(hb) = heartbeat {
        if let Err(e) = hb.into_inner().flush() {
            io_error.get_or_insert(format!("heartbeat flush failed: {e}"));
        }
    }
    if let Some(e) = io_error {
        return Err(e);
    }

    // Identical grid points (e.g. repeated axis values) execute once and
    // replay to every duplicate; output is byte-identical either way.
    if deduped > 0 {
        println!("deduped = {deduped} (identical grid points executed once)");
    }
    println!(
        "completed {} / failed {} / watchdog trips {} in {:.2?}\n",
        aggregate.completed, aggregate.failed, aggregate.watchdog_trips, elapsed
    );
    println!("{}", aggregate.render_table());
    if opts.flag("profile") {
        print!("{}", pool_stats.render());
    }
    if let Some(path) = opts.values.get("csv") {
        println!("per-job CSV written to {path}");
    }
    if let Some(path) = opts.values.get("jsonl") {
        println!("per-job JSONL written to {path}");
    }
    if let Some(path) = opts.values.get("heartbeat") {
        if path != "-" {
            println!("heartbeat log written to {path}");
        }
    }
    if aggregate.failed > 0 {
        for (index, message) in &aggregate.failures {
            eprintln!("job {}: {message}", jobs[*index].label());
        }
        return Err(format!(
            "{} of {} jobs failed",
            aggregate.failed,
            jobs.len()
        ));
    }
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    let addr = opts.str_or("addr", "127.0.0.1:7431");
    let cache_mb = opts.usize_or("cache-mb", 64)?.max(1);
    let cfg = ServeConfig {
        addr: addr.to_string(),
        workers: opts.usize_or("jobs", 0)?,
        cache_bytes: cache_mb << 20,
        max_live: opts.usize_or("max-live", 64)?.max(1),
        dump_dir: std::path::PathBuf::from(opts.str_or("dump-dir", "dumps")),
        deterministic: !opts.flag("wall-heartbeats"),
    };
    let workers = cfg.effective_workers();
    let max_live = cfg.max_live;
    let mut server =
        ServerHandle::spawn(cfg).map_err(|e| format!("cannot start daemon on {addr}: {e}"))?;
    println!(
        "gcs serve: listening on {} ({workers} worker{}, {cache_mb} MiB cache, \
         watermark {max_live} live jobs)",
        server.addr(),
        if workers == 1 { "" } else { "s" },
    );
    println!("POST /v1/jobs?kind=run|sweep|chaos-batch to submit; POST /v1/shutdown to stop");
    server.join();
    println!("gcs serve: shut down");
    Ok(())
}

fn cmd_serve_bench(opts: &Options) -> Result<(), String> {
    let quick = opts.flag("quick");
    let cfg = ServeBenchConfig {
        addr: opts.values.get("addr").cloned(),
        clients: opts.usize_or("clients", if quick { 4 } else { 8 })?.max(1),
        specs: opts.usize_or("specs", if quick { 8 } else { 24 })?.max(1),
        repeat: opts.usize_or("repeat", if quick { 2 } else { 4 })?.max(1),
        workers: opts.usize_or("jobs", 0)?,
        quick,
    };
    let outcome = run_serve_bench(&cfg)?;
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec![
        "cold jobs/sec".into(),
        format!("{:.1}", outcome.cold_jobs_per_sec),
    ]);
    table.row(vec![
        "hot jobs/sec".into(),
        format!("{:.1}", outcome.hot_jobs_per_sec),
    ]);
    table.row(vec![
        "cache hit ratio".into(),
        format!("{:.3}", outcome.hit_ratio),
    ]);
    table.row(vec![
        "hot-vs-cold speedup".into(),
        format!("{:.1}×", outcome.speedup),
    ]);
    println!("{table}");
    if opts.flag("no-artifact") {
        return Ok(());
    }
    let path = outcome
        .report
        .write()
        .map_err(|e| format!("cannot write BENCH_serve.json: {e}"))?;
    println!("bench artifact written to {path}");
    Ok(())
}

/// Compares two event logs. `Ok(true)` means identical, `Ok(false)` means
/// a divergence was found and reported (exit code 2 in `main`).
fn cmd_replay_check(args: &[String]) -> Result<bool, String> {
    let [left, right] = args else {
        return Err("replay-check needs exactly two event-log paths".to_string());
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let (a, b) = (read(left)?, read(right)?);
    match diff_streams(&a, &b) {
        None => {
            println!(
                "replay-check: streams are byte-identical ({} events)",
                a.lines().count()
            );
            Ok(true)
        }
        Some(diff) => {
            println!("replay-check: streams diverge at line {}:", diff.line);
            // Lines before the divergence are identical in both streams,
            // so the leading context is printed once.
            const CONTEXT: usize = 3;
            let lines: Vec<&str> = a.lines().collect();
            let first = diff.line.saturating_sub(1).saturating_sub(CONTEXT);
            for (offset, line) in lines[first..diff.line - 1].iter().enumerate() {
                println!("     {:>6}  {line}", first + offset + 1);
            }
            println!(
                "  <  {:>6}  {}",
                diff.line,
                diff.left.as_deref().unwrap_or("<end of stream>")
            );
            println!(
                "  >  {:>6}  {}",
                diff.line,
                diff.right.as_deref().unwrap_or("<end of stream>")
            );
            // Trailing context from each stream separately — after the
            // divergence they no longer correspond line-for-line.
            for (marker, text) in [('<', &a), ('>', &b)] {
                for (offset, line) in text.lines().skip(diff.line).take(CONTEXT - 1).enumerate() {
                    println!("  {marker}  {:>6}  {line}", diff.line + offset + 1);
                }
            }
            eprintln!("error: event streams differ");
            Ok(false)
        }
    }
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let [action, path, rest @ ..] = args else {
        return Err(
            "trace needs an action (summary|blame|export) and an event-log path".to_string(),
        );
    };
    let opts = Options::parse(rest)?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Binary flight-recorder dumps (`GCSREC01` magic) decode straight to
    // events; everything else is the JSONL event-log format.
    let events = if is_recorder_dump(&bytes) {
        decode_dump(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text = String::from_utf8(bytes)
            .map_err(|e| format!("{path}: stream is not UTF-8 (and not a recorder dump): {e}"))?;
        parse_stream(&text).map_err(|e| format!("{path}: {e}"))?
    };
    if events.is_empty() {
        return Err(format!("{path}: stream contains no events"));
    }
    let dag = Dag::from_events(events);
    match action.as_str() {
        "summary" => {
            print!("{}", TraceSummary::from_dag(&dag).render());
            Ok(())
        }
        "blame" => {
            let clocks = ClockReconstruction::from_events(dag.events());
            let end = match opts.values.get("end") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| format!("option --end: `{v}` is not a number"))?,
                ),
                None => None,
            };
            let max_hops = opts.usize_or("max-hops", 64)?;
            let report = blame(&dag, &clocks, end, max_hops, opts.flag("global"))
                .ok_or("stream never has two nodes awake at once — no skew to explain")?;
            print!("{}", report.render(&clocks));
            Ok(())
        }
        "export" => {
            if !opts.flag("chrome") {
                return Err("export needs a format; the supported one is --chrome".to_string());
            }
            let json = export_chrome(&dag);
            match opts.values.get("out") {
                Some(out) => {
                    std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
                    println!(
                        "chrome trace written to {out} ({} events, {} messages)",
                        dag.events().len(),
                        dag.messages().len()
                    );
                }
                None => print!("{json}"),
            }
            Ok(())
        }
        other => Err(format!(
            "unknown trace action `{other}` (expected summary, blame, or export)"
        )),
    }
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("top needs exactly one heartbeat-stream path (or `-` for stdin)".to_string());
    };
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    let (records, skipped) = clock_sync::telemetry::parse_stream(&text);
    print!("{}", clock_sync::telemetry::render_top(&records, skipped));
    Ok(())
}

/// Compares two bench artifacts. `Ok(true)` means no regressions,
/// `Ok(false)` means at least one metric regressed (exit code 1 in
/// `main`); `Err` is a usage or artifact error (exit code 2).
fn cmd_bench(args: &[String]) -> Result<bool, String> {
    let [action, old_path, new_path, rest @ ..] = args else {
        return Err(
            "bench needs an action (diff) and two `gcs-bench-result/v1` artifact paths".to_string(),
        );
    };
    if action != "diff" {
        return Err(format!("unknown bench action `{action}` (expected diff)"));
    }
    let opts = Options::parse(rest)?;
    let tolerance = opts.f64_or("tolerance", 0.05)?;
    if !(tolerance >= 0.0 && tolerance.is_finite()) {
        return Err(format!(
            "option --tolerance: must be a non-negative number, got {tolerance}"
        ));
    }
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let old = parse_artifact(&read(old_path)?).map_err(|e| format!("{old_path}: {e}"))?;
    let new = parse_artifact(&read(new_path)?).map_err(|e| format!("{new_path}: {e}"))?;
    let report = bench_diff(&old, &new, tolerance)?;
    print!("{}", report.render());
    Ok(report.regressions() == 0)
}

fn cmd_lb_global(opts: &Options) -> Result<(), String> {
    let d = opts.usize_or("d", 8)?;
    let eps = opts.f64_or("eps", 0.05)?;
    let t = opts.f64_or("t", 0.5)?;
    let t_hat = opts.f64_or("t-hat", 2.0 * t)?;
    let lb = GlobalLowerBound::new(
        clock_sync::graph::topology::path(d + 1),
        eps,
        eps,
        t,
        t_hat,
        eps / 5.0,
    );
    let params = Params::recommended(eps, t_hat).map_err(|e| e.to_string())?;
    let (reports, indistinguishable) =
        lb.verify_indistinguishable(|| vec![AOpt::new(params); d + 1]);
    let mut table = Table::new(vec!["execution", "endpoint skew", "max skew"]);
    for r in &reports {
        table.row(vec![
            format!("{:?}", r.execution),
            format!("{:.4}", r.endpoint_skew),
            format!("{:.4}", r.max_skew),
        ]);
    }
    println!("Theorem 7.2 on a path of D = {d} (ε = {eps}, 𝒯 = {t}, 𝒯̂ = {t_hat}):");
    println!(
        "ϱ = {:.4}, predicted floor (1+ϱ)D𝒯 = {:.4}\n",
        lb.rho(),
        lb.predicted_skew()
    );
    println!("{table}");
    println!("locally indistinguishable at every node: {indistinguishable}");
    println!(
        "A^opt upper bound 𝒢 = {:.4}; forced/𝒢 = {:.2}",
        params.global_skew_bound(d as u32),
        reports[2].endpoint_skew / params.global_skew_bound(d as u32)
    );
    Ok(())
}

fn cmd_lb_local(opts: &Options) -> Result<(), String> {
    let b = opts.usize_or("b", 4)?;
    let stages = opts.usize_or("stages", 2)?;
    let eps = opts.f64_or("eps", 0.2)?;
    let t = opts.f64_or("t", 1.0)?;
    let alpha = 1.0 - eps;
    let lb = LocalLowerBound::new(b, stages, eps, t, alpha);
    let algo = opts.str_or("algo", "nosync");
    let reports = match algo {
        "nosync" => lb.run(|n| vec![NoSync; n]),
        "aopt" => {
            let params = Params::recommended(eps, t).map_err(|e| e.to_string())?;
            lb.run(|n| vec![AOpt::new(params); n])
        }
        "jump" => {
            let params = Params::recommended(eps, t).map_err(|e| e.to_string())?;
            lb.run(|n| vec![AOptJump::new(params); n])
        }
        other => return Err(format!("lb-local supports nosync|aopt|jump, got `{other}`")),
    };
    println!(
        "Theorem 7.7 construction: D' = {}, b = {b}, {stages} stages, vs {algo}\n",
        lb.d_prime()
    );
    let mut table = Table::new(vec!["stage", "pair", "distance", "skew", "target"]);
    for r in &reports {
        table.row(vec![
            r.stage.to_string(),
            format!("v{}..v{}", r.ahead, r.behind),
            r.distance.to_string(),
            format!("{:.4}", r.skew),
            format!("{:.4}", r.target),
        ]);
    }
    println!("{table}");
    println!(
        "guaranteed final neighbour skew (when b ≥ Thm 7.7's threshold): {:.4}",
        lb.guaranteed_final_skew()
    );
    Ok(())
}

/// `gcs chaos` — see [`CHAOS_USAGE`]. Returns `Ok(false)` for oracle-level
/// failures (findings, replay mismatch) so `main` can exit 1 vs. 2.
fn cmd_chaos(args: &[String]) -> Result<bool, String> {
    let Some((sub, rest)) = args.split_first() else {
        return Err("chaos needs a subcommand: run | batch | shrink | replay".into());
    };
    // One optional positional FILE.chaos, then ordinary --key options.
    let (path, flags) = match rest.split_first() {
        Some((first, more)) if !first.starts_with("--") => (Some(first.as_str()), more),
        _ => (None, rest),
    };
    let opts = Options::parse(flags)?;
    let threads = opts.usize_or("threads", 1)?.max(1);
    let need_path = || path.ok_or_else(|| format!("chaos {sub} needs a FILE.chaos argument"));
    let load = |p: &str| -> Result<ChaosSpec, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        ChaosSpec::parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    match sub.as_str() {
        "run" => {
            let p = need_path()?;
            let spec = load(p)?;
            let out = run_scenario(&spec, threads)?;
            print_chaos_outcome(&out);
            // A tripped oracle leaves its flight-recorder window next to
            // the scenario (or wherever --dump-recorder points): the
            // causal events, ready for `gcs trace blame`.
            if let Some(events) = &out.recorder_window {
                let dump = match opts.values.get("dump-recorder") {
                    Some(o) => o.clone(),
                    None => format!("{}.dump.jsonl", p.strip_suffix(".chaos").unwrap_or(p)),
                };
                write_events_jsonl(&dump, events)
                    .map_err(|e| format!("cannot write recorder dump {dump}: {e}"))?;
                println!("recorder dump written to {dump} ({} events)", events.len());
            }
            Ok(!out.unexpected())
        }
        "batch" => {
            if path.is_some() {
                return Err("chaos batch takes options only, no FILE argument".into());
            }
            let cfg = BatchConfig {
                scenarios: opts.usize_or("scenarios", 1000)?,
                start_seed: opts.u64_or("start-seed", 1)?,
                workers: opts.usize_or("jobs", 0)?,
                threads,
                shrink: !opts.flag("no-shrink"),
            };
            println!(
                "chaos batch: {} scenarios from seed {}",
                cfg.scenarios, cfg.start_seed
            );
            let summary = run_batch(&cfg);
            let mut table = Table::new(vec!["verdict", "count"]);
            table.row(vec!["clean".into(), summary.clean.to_string()]);
            table.row(vec![
                "expected violations".into(),
                summary.expected_violations.to_string(),
            ]);
            table.row(vec![
                "findings (unexpected)".into(),
                summary.findings.len().to_string(),
            ]);
            table.row(vec!["failed".into(), summary.failed.len().to_string()]);
            println!("{table}");
            for (seed, error) in &summary.failed {
                eprintln!("seed {seed} failed: {error}");
            }
            for f in &summary.findings {
                let spec = f.shrunk.as_ref().map_or(&f.spec, |s| &s.spec);
                match opts.values.get("fixtures") {
                    Some(dir) => {
                        std::fs::create_dir_all(dir)
                            .map_err(|e| format!("cannot create {dir}: {e}"))?;
                        let file = format!("{dir}/finding-{}.chaos", f.seed);
                        std::fs::write(&file, spec.format())
                            .map_err(|e| format!("cannot write {file}: {e}"))?;
                        println!("finding: seed {} ({}) -> {file}", f.seed, f.kind);
                        // Re-run the (shrunk) reproducer once to capture
                        // its flight-recorder window — the minimal causal
                        // event dump — next to the fixture.
                        if let Ok(rerun) = run_scenario(spec, threads) {
                            if let Some(events) = &rerun.recorder_window {
                                let dump = format!("{dir}/finding-{}.dump.jsonl", f.seed);
                                write_events_jsonl(&dump, events).map_err(|e| {
                                    format!("cannot write recorder dump {dump}: {e}")
                                })?;
                                println!("recorder dump: {dump} ({} events)", events.len());
                            }
                        }
                        println!("repro: {}", ChaosSpec::repro_line(&file));
                    }
                    None => {
                        println!("finding: seed {} ({}):", f.seed, f.kind);
                        print!("{}", spec.format());
                    }
                }
            }
            Ok(summary.findings.is_empty() && summary.failed.is_empty())
        }
        "shrink" => {
            let p = need_path()?;
            let spec = load(p)?;
            let res = shrink_scenario(&spec, threads)?;
            let out_path = match opts.values.get("out") {
                Some(o) => o.clone(),
                None => format!("{}.min.chaos", p.strip_suffix(".chaos").unwrap_or(p)),
            };
            std::fs::write(&out_path, res.spec.format())
                .map_err(|e| format!("cannot write {out_path}: {e}"))?;
            println!(
                "shrunk {} clause{} -> {} in {} executions",
                res.original_clauses,
                if res.original_clauses == 1 { "" } else { "s" },
                res.spec.faults.len(),
                res.executions
            );
            println!(
                "violation: {} at node {} t {}",
                res.violation.kind(),
                res.violation.node(),
                res.violation.time()
            );
            println!("wrote {out_path}");
            println!("repro: {}", ChaosSpec::repro_line(&out_path));
            Ok(true)
        }
        "replay" => {
            let p = need_path()?;
            let spec = load(p)?;
            let out = run_scenario(&spec, threads)?;
            let observed = out
                .violation
                .as_ref()
                .map(|v| format!("{} at node {} t {}", v.kind(), v.node(), v.time()));
            let recorded = spec
                .violation
                .as_ref()
                .map(|v| format!("{} at node {} t {}", v.kind, v.node, v.t));
            let reproduced = match (&spec.violation, &out.violation) {
                (Some(exp), Some(got)) => {
                    exp.kind == got.kind()
                        && exp.node == got.node()
                        && exp.t.to_bits() == got.time().to_bits()
                }
                (None, None) => true,
                _ => false,
            };
            let none = || "clean (no violation)".to_string();
            if reproduced {
                println!("reproduced: {}", recorded.unwrap_or_else(none));
                Ok(true)
            } else {
                println!("MISMATCH:");
                println!("  recorded: {}", recorded.unwrap_or_else(none));
                println!("  observed: {}", observed.unwrap_or_else(none));
                Ok(false)
            }
        }
        other => Err(format!(
            "unknown chaos subcommand `{other}` (expected run | batch | shrink | replay)"
        )),
    }
}

/// Renders one scenario outcome as the `gcs chaos run` report.
fn print_chaos_outcome(out: &ScenarioOutcome) {
    let mut table = Table::new(vec!["quantity", "value"]);
    table.row(vec!["nodes".into(), out.nodes.to_string()]);
    table.row(vec!["diameter".into(), out.diameter.to_string()]);
    table.row(vec!["horizon".into(), format!("{}", out.horizon)]);
    table.row(vec![
        "global skew".into(),
        format!("{:.6}", out.global_skew),
    ]);
    table.row(vec![
        "global bound 𝒢".into(),
        format!("{:.6}", out.global_bound),
    ]);
    table.row(vec!["local skew".into(), format!("{:.6}", out.local_skew)]);
    table.row(vec![
        "local bound".into(),
        format!("{:.6}", out.local_bound),
    ]);
    table.row(vec![
        "transmissions".into(),
        out.stats.transmissions.to_string(),
    ]);
    table.row(vec!["deliveries".into(), out.stats.deliveries.to_string()]);
    table.row(vec![
        "dropped (model)".into(),
        out.stats.dropped_model.to_string(),
    ]);
    table.row(vec![
        "dropped (faults)".into(),
        out.stats.dropped_faults.to_string(),
    ]);
    table.row(vec!["duplicated".into(), out.stats.duplicated.to_string()]);
    println!("{table}");
    match &out.violation {
        None => println!("oracle: clean — no invariant violation"),
        Some(v) => {
            let class = if out.violation_expected {
                "expected (out-of-model clause present)"
            } else {
                "UNEXPECTED — a finding"
            };
            println!(
                "oracle: {} violation at node {} t {} — {class}",
                v.kind(),
                v.node(),
                v.time()
            );
        }
    }
}
