//! `gcs` — command-line driver for the gradient clock-synchronization
//! reproduction.
//!
//! ```text
//! gcs bounds        print A^opt parameters and skew bounds for (ε̂, 𝒯̂, D)
//! gcs run           simulate an algorithm on a topology and report skews
//! gcs replay-check  diff two JSONL event logs (determinism check)
//! gcs lb-global     run the Theorem 7.2 forced-global-skew construction
//! gcs lb-local      run the Theorem 7.7 forced-local-skew construction
//! ```
//!
//! Run `gcs <command> --help` (or no arguments) for the options.

use std::collections::HashMap;
use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use clock_sync::adversary::framed::LocalLowerBound;
use clock_sync::adversary::shift::GlobalLowerBound;
use clock_sync::adversary::WavefrontDelay;
use clock_sync::analysis::{
    diff_streams, ClockTrace, ComplexityReport, InvariantWatchdog, JsonlWriter, MetricsSink,
    SkewObserver, Table, WatchdogTrip,
};
use clock_sync::core::{
    AOpt, AOptJump, EnvelopeAOpt, MaxAlgorithm, MidpointAlgorithm, MinGapAOpt, NoSync, Params,
};
use clock_sync::graph::{topology, Graph, NodeId};
use clock_sync::sim::{
    rates, ConstantDelay, DelayModel, DirectionalDelay, Engine, EngineEvent, EventSink,
    MessageStats, Protocol, UniformDelay,
};
use clock_sync::time::{DriftBounds, RateSchedule};

const USAGE: &str = "\
gcs — gradient clock synchronization (Lenzen/Locher/Wattenhofer) toolkit

USAGE:
    gcs bounds    [--eps E] [--t T] [--d D] [--sigma S]
    gcs run       [--algo NAME] [--topology SPEC] [--eps E] [--t T]
                  [--horizon H] [--delays SPEC] [--rates SPEC] [--seed N]
                  [--trace FILE.csv] [--events FILE.jsonl] [--metrics]
                  [--watchdog] [--kappa-factor F]
    gcs replay-check FILE1.jsonl FILE2.jsonl
    gcs lb-global [--d D] [--eps E] [--t T] [--t-hat TH]
    gcs lb-local  [--b B] [--stages S] [--eps E] [--t T] [--algo NAME]

ALGORITHMS (--algo):
    aopt (default) | jump | mingap | envelope | max | midpoint | nosync

TOPOLOGIES (--topology):
    path:N | ring:N | grid:WxH | tree:N | star:N | hypercube:DIM
    er:N:P (Erdős–Rényi) | geo:N:R (random geometric)     default: path:16

DELAYS (--delays):
    uniform (default) | const | zero | directional | wavefront:BOUNDARY

RATES (--rates):
    walk (default) | split | alternating:PERIOD | gradient | nominal

OBSERVABILITY (gcs run):
    --trace FILE.csv     sampled clock trajectories (plotting)
    --events FILE.jsonl  complete engine event log, one JSON object per line;
                         byte-identical across same-seed runs (replay-check)
    --metrics            print the metrics registry snapshot after the run
    --watchdog           check Conditions (1)/(2) and the Def. 5.6 legal
                         state online; on violation, dump the last events
    --kappa-factor F     scale κ by F, bypassing the Eq. (4) validation
                         (with F < 1 and --watchdog: demonstrates the
                         invariant violation the paper predicts)

EXAMPLES:
    gcs bounds --eps 1e-4 --t 0.001 --d 30
    gcs run --topology grid:6x6 --delays uniform --rates walk --horizon 200
    gcs run --algo aopt --topology path:16 --events out.jsonl --metrics
    gcs run --algo aopt --watchdog --kappa-factor 0.05 --rates split
    gcs replay-check a.jsonl b.jsonl
    gcs lb-global --d 16 --eps 0.05 --t 0.5 --t-hat 1.0
    gcs lb-local --b 5 --stages 2 --eps 0.2 --algo nosync
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    // replay-check takes positional file arguments, not --key value pairs.
    let result = if command == "replay-check" {
        cmd_replay_check(rest)
    } else {
        let opts = match Options::parse(rest) {
            Ok(opts) => opts,
            Err(message) => {
                eprintln!("error: {message}\n");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        match command.as_str() {
            "bounds" => cmd_bounds(&opts),
            "run" => cmd_run(&opts),
            "lb-global" => cmd_lb_global(&opts),
            "lb-local" => cmd_lb_local(&opts),
            "--help" | "-h" | "help" => {
                print!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command `{other}`")),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed `--key value` options.
struct Options {
    values: HashMap<String, String>,
}

impl Options {
    /// Options that are pure flags: present or absent, no value.
    const FLAGS: &'static [&'static str] = &["metrics", "watchdog"];

    fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut iter = args.iter();
        while let Some(key) = iter.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected an option, got `{key}`"));
            };
            if Self::FLAGS.contains(&name) {
                values.insert(name.to_string(), String::new());
                continue;
            }
            let Some(value) = iter.next() else {
                return Err(format!("option `{key}` needs a value"));
            };
            values.insert(name.to_string(), value.clone());
        }
        Ok(Options { values })
    }

    fn flag(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map_or(default, String::as_str)
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: `{v}` is not a number")),
        }
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: `{v}` is not an integer")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: `{v}` is not an integer")),
        }
    }
}

fn parse_topology(spec: &str, seed: u64) -> Result<Graph, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or_default();
    let arg = parts.next();
    let arg2 = parts.next();
    fn need<'a>(a: Option<&'a str>, spec: &str) -> Result<&'a str, String> {
        a.ok_or_else(|| format!("topology `{spec}` needs a size"))
    }
    let int = |s: &str| {
        s.parse::<usize>()
            .map_err(|_| format!("bad size in topology `{spec}`"))
    };
    match kind {
        "path" => Ok(topology::path(int(need(arg, spec)?)?)),
        "ring" => Ok(topology::cycle(int(need(arg, spec)?)?)),
        "star" => Ok(topology::star(int(need(arg, spec)?)?)),
        "tree" => Ok(topology::binary_tree(int(need(arg, spec)?)?)),
        "hypercube" => Ok(topology::hypercube(int(need(arg, spec)?)?)),
        "grid" => {
            let dims = need(arg, spec)?;
            let (w, h) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid needs WxH, got `{dims}`"))?;
            Ok(topology::grid(int(w)?, int(h)?))
        }
        "er" => {
            let n = int(need(arg, spec)?)?;
            let p: f64 = need(arg2, spec)?
                .parse()
                .map_err(|_| format!("bad probability in `{spec}`"))?;
            Ok(topology::erdos_renyi(n, p, seed))
        }
        "geo" => {
            let n = int(need(arg, spec)?)?;
            let r: f64 = need(arg2, spec)?
                .parse()
                .map_err(|_| format!("bad radius in `{spec}`"))?;
            Ok(topology::random_geometric(n, r, seed))
        }
        other => Err(format!("unknown topology `{other}`")),
    }
}

fn parse_rates(
    spec: &str,
    n: usize,
    drift: DriftBounds,
    horizon: f64,
    seed: u64,
) -> Result<Vec<RateSchedule>, String> {
    let (kind, arg) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "walk" => Ok(rates::random_walk(n, drift, 5.0, horizon, seed)),
        "split" => Ok(rates::split(n, drift, |v| v < n / 2)),
        "gradient" => Ok(rates::gradient(n, drift)),
        "nominal" => Ok(rates::nominal(n)),
        "alternating" => {
            let period: f64 = if arg.is_empty() {
                10.0
            } else {
                arg.parse().map_err(|_| format!("bad period `{arg}`"))?
            };
            Ok(rates::alternating(n, drift, period, horizon))
        }
        other => Err(format!("unknown rates spec `{other}`")),
    }
}

fn cmd_bounds(opts: &Options) -> Result<(), String> {
    let eps = opts.f64_or("eps", 1e-3)?;
    let t = opts.f64_or("t", 0.01)?;
    let d = opts.usize_or("d", 32)? as u32;
    let params = match opts.values.get("sigma") {
        Some(s) => {
            let sigma: u32 = s.parse().map_err(|_| "bad --sigma".to_string())?;
            Params::with_sigma(eps, t, sigma)
        }
        None => Params::recommended(eps, t),
    }
    .map_err(|e| e.to_string())?;
    let (alpha, beta) = params.rate_envelope();
    let mut table = Table::new(vec!["quantity", "value"]);
    table.row(vec!["ε̂ (drift bound)".into(), format!("{eps}")]);
    table.row(vec!["𝒯̂ (delay bound)".into(), format!("{t}")]);
    table.row(vec![
        "μ (fast-mode boost)".into(),
        format!("{:.6}", params.mu()),
    ]);
    table.row(vec![
        "H₀ (send period)".into(),
        format!("{:.6}", params.h0()),
    ]);
    table.row(vec!["κ (quantum)".into(), format!("{:.6}", params.kappa())]);
    table.row(vec!["σ (log base)".into(), params.sigma().to_string()]);
    table.row(vec!["α (min logical rate)".into(), format!("{alpha:.6}")]);
    table.row(vec!["β (max logical rate)".into(), format!("{beta:.6}")]);
    table.row(vec![
        format!("𝒢 global bound (D = {d})"),
        format!("{:.6}", params.global_skew_bound(d)),
    ]);
    table.row(vec![
        format!("local bound (D = {d})"),
        format!("{:.6}", params.local_skew_bound(d)),
    ]);
    table.row(vec![
        "amortized msgs/node/𝒯̂".into(),
        format!("{:.4}", t / params.h0()),
    ]);
    println!("{table}");
    Ok(())
}

/// The `gcs run` observability pipeline: one statically composed
/// [`EventSink`] feeding every requested consumer from a single event
/// stream and a single per-event snapshot pass.
struct RunSinks {
    observer: SkewObserver,
    trace: Option<(String, ClockTrace)>,
    events: Option<(String, JsonlWriter<BufWriter<File>>)>,
    metrics: Option<MetricsSink>,
    watchdog: Option<InvariantWatchdog>,
}

impl RunSinks {
    fn new(graph: &Graph, horizon: f64, opts: &Options, params: Params) -> Result<Self, String> {
        let trace = opts
            .values
            .get("trace")
            .map(|path| (path.clone(), ClockTrace::new(graph.len(), horizon / 500.0)));
        let events = match opts.values.get("events") {
            Some(path) => {
                let file = File::create(path)
                    .map_err(|e| format!("cannot create event log {path}: {e}"))?;
                Some((path.clone(), JsonlWriter::new(BufWriter::new(file))))
            }
            None => None,
        };
        let metrics = opts.flag("metrics").then(MetricsSink::new);
        let watchdog = if opts.flag("watchdog") {
            let eps = opts.f64_or("eps", 1e-2)?;
            let drift = DriftBounds::new(eps).map_err(|e| e.to_string())?;
            Some(InvariantWatchdog::new(graph, params, drift))
        } else {
            None
        };
        Ok(RunSinks {
            observer: SkewObserver::new(graph),
            trace,
            events,
            metrics,
            watchdog,
        })
    }
}

impl EventSink for RunSinks {
    fn enabled(&self) -> bool {
        self.events.is_some() || self.metrics.is_some() || self.watchdog.is_some()
    }

    fn record(&mut self, event: &EngineEvent) {
        if let Some((_, w)) = self.events.as_mut() {
            w.record(event);
        }
        if let Some(m) = self.metrics.as_mut() {
            m.record(event);
        }
        if let Some(w) = self.watchdog.as_mut() {
            w.record(event);
        }
    }

    fn wants_snapshots(&self) -> bool {
        true // the skew observer always samples per-event state
    }

    fn snapshot(&mut self, t: f64, clocks: &[f64], queue_depth: usize) {
        self.observer.snapshot(t, clocks, queue_depth);
        if let Some((_, trace)) = self.trace.as_mut() {
            trace.snapshot(t, clocks, queue_depth);
        }
        if let Some(m) = self.metrics.as_mut() {
            m.snapshot(t, clocks, queue_depth);
        }
        if let Some(w) = self.watchdog.as_mut() {
            w.snapshot(t, clocks, queue_depth);
        }
    }
}

/// What one `gcs run` execution produced, after all file sinks are closed.
struct RunOutput {
    observer: SkewObserver,
    stats: MessageStats,
    metrics: Option<MetricsSink>,
    trip: Option<WatchdogTrip>,
}

fn run_any<P: Protocol, D: DelayModel>(
    graph: Graph,
    protocols: Vec<P>,
    delay: D,
    schedules: Vec<RateSchedule>,
    horizon: f64,
    sinks: RunSinks,
) -> Result<RunOutput, String> {
    let mut engine = Engine::builder(graph)
        .protocols(protocols)
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(sinks)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(horizon);
    let stats = engine.message_stats().clone();
    let mut sinks = engine.into_sink();
    if let Some((path, trace)) = sinks.trace.take() {
        trace
            .write_csv(&path)
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        println!("trace written to {path} ({} rows)", trace.len());
    }
    if let Some((path, writer)) = sinks.events.take() {
        let written = writer.written();
        writer
            .finish()
            .map_err(|e| format!("cannot write event log to {path}: {e}"))?;
        println!("event log written to {path} ({written} events)");
    }
    if let Some(m) = sinks.metrics.as_mut() {
        m.flush_rate_window(horizon);
    }
    Ok(RunOutput {
        observer: sinks.observer,
        stats,
        metrics: sinks.metrics,
        trip: sinks.watchdog.and_then(|w| w.trip().cloned()),
    })
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let eps = opts.f64_or("eps", 1e-2)?;
    let t = opts.f64_or("t", 0.1)?;
    let horizon = opts.f64_or("horizon", 120.0)?;
    let seed = opts.u64_or("seed", 42)?;
    let graph = parse_topology(opts.str_or("topology", "path:16"), seed)?;
    let n = graph.len();
    let d = graph.diameter();
    let drift = DriftBounds::new(eps).map_err(|e| e.to_string())?;
    let schedules = parse_rates(opts.str_or("rates", "walk"), n, drift, horizon, seed)?;
    let mut params = Params::recommended(eps, t).map_err(|e| e.to_string())?;
    if let Some(factor) = opts.values.get("kappa-factor") {
        let factor: f64 = factor
            .parse()
            .map_err(|_| format!("option --kappa-factor: `{factor}` is not a number"))?;
        params = params.with_kappa_factor_unchecked(factor);
        println!(
            "κ scaled by {factor}: κ = {:.6} (Eq. 4 minimum: {:.6})",
            params.kappa(),
            params.min_kappa()
        );
    }
    let algo = opts.str_or("algo", "aopt");
    let sinks = RunSinks::new(&graph, horizon, opts, params)?;

    // Delay model selection (monomorphized per arm).
    macro_rules! dispatch_delay {
        ($protocols:expr) => {{
            let delay_spec = opts.str_or("delays", "uniform");
            let (kind, arg) = delay_spec.split_once(':').unwrap_or((delay_spec, ""));
            match kind {
                "uniform" => run_any(
                    graph.clone(),
                    $protocols,
                    UniformDelay::new(t, seed),
                    schedules.clone(),
                    horizon,
                    sinks,
                )?,
                "const" => run_any(
                    graph.clone(),
                    $protocols,
                    ConstantDelay::new(t / 2.0),
                    schedules.clone(),
                    horizon,
                    sinks,
                )?,
                "zero" => run_any(
                    graph.clone(),
                    $protocols,
                    ConstantDelay::new(0.0),
                    schedules.clone(),
                    horizon,
                    sinks,
                )?,
                "directional" => run_any(
                    graph.clone(),
                    $protocols,
                    DirectionalDelay::new(&graph, NodeId(0), 0.0, t),
                    schedules.clone(),
                    horizon,
                    sinks,
                )?,
                "wavefront" => {
                    let boundary: u32 = if arg.is_empty() {
                        (d / 2).max(1)
                    } else {
                        arg.parse().map_err(|_| format!("bad boundary `{arg}`"))?
                    };
                    let flip = boundary as f64 * t / (2.0 * eps) + 20.0;
                    run_any(
                        graph.clone(),
                        $protocols,
                        WavefrontDelay::new(&graph, NodeId(0), t, flip, boundary),
                        schedules.clone(),
                        horizon.max(flip + 10.0),
                        sinks,
                    )?
                }
                other => return Err(format!("unknown delays spec `{other}`")),
            }
        }};
    }

    let output = match algo {
        "aopt" => dispatch_delay!(vec![AOpt::new(params); n]),
        "jump" => dispatch_delay!(vec![AOptJump::new(params); n]),
        "mingap" => dispatch_delay!(vec![MinGapAOpt::new(params); n]),
        "envelope" => dispatch_delay!(vec![EnvelopeAOpt::new(params); n]),
        "max" => dispatch_delay!(vec![MaxAlgorithm::new(1.0); n]),
        "midpoint" => dispatch_delay!(vec![MidpointAlgorithm::new(params.h0(), params.mu()); n]),
        "nosync" => dispatch_delay!(vec![NoSync; n]),
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let observer = &output.observer;
    let stats = &output.stats;

    let max_degree = graph
        .nodes()
        .map(|v| graph.neighbors(v).len())
        .max()
        .unwrap_or(0);
    let report = ComplexityReport::from_stats(stats, &params, n, max_degree, d, horizon);

    let mut table = Table::new(vec!["quantity", "value"]);
    table.row(vec!["algorithm".into(), algo.to_string()]);
    table.row(vec!["nodes / diameter".into(), format!("{n} / {d}")]);
    table.row(vec![
        "worst global skew".into(),
        format!(
            "{:.6}  (at t = {:.2})",
            observer.worst_global(),
            observer.worst_global_at()
        ),
    ]);
    table.row(vec![
        "worst local skew".into(),
        format!(
            "{:.6}  (at t = {:.2})",
            observer.worst_local(),
            observer.worst_local_at()
        ),
    ]);
    table.row(vec![
        "A^opt bounds (𝒢 / local)".into(),
        format!(
            "{:.6} / {:.6}",
            params.global_skew_bound(d),
            params.local_skew_bound(d)
        ),
    ]);
    table.row(vec!["send events".into(), stats.send_events.to_string()]);
    table.row(vec![
        "deliveries / dropped".into(),
        format!("{} / {}", stats.deliveries, stats.dropped),
    ]);
    table.row(vec![
        "delivery imbalance (max/mean)".into(),
        format!("{:.3}", report.delivery_imbalance),
    ]);
    println!("{table}");

    if let Some(metrics) = &output.metrics {
        println!("\nmetrics snapshot:");
        print!("{}", metrics.render());
    }

    match &output.trip {
        Some(trip) => {
            println!();
            print!("{}", trip.render());
            Err("invariant watchdog tripped".to_string())
        }
        None => {
            if opts.flag("watchdog") {
                println!("\nwatchdog: all invariants held");
            }
            Ok(())
        }
    }
}

fn cmd_replay_check(args: &[String]) -> Result<(), String> {
    let [left, right] = args else {
        return Err("replay-check needs exactly two event-log paths".to_string());
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let (a, b) = (read(left)?, read(right)?);
    match diff_streams(&a, &b) {
        None => {
            println!(
                "replay-check: streams are byte-identical ({} events)",
                a.lines().count()
            );
            Ok(())
        }
        Some(diff) => {
            println!("replay-check: streams diverge at line {}:", diff.line);
            println!(
                "  left:  {}",
                diff.left.as_deref().unwrap_or("<end of stream>")
            );
            println!(
                "  right: {}",
                diff.right.as_deref().unwrap_or("<end of stream>")
            );
            Err("event streams differ".to_string())
        }
    }
}

fn cmd_lb_global(opts: &Options) -> Result<(), String> {
    let d = opts.usize_or("d", 8)?;
    let eps = opts.f64_or("eps", 0.05)?;
    let t = opts.f64_or("t", 0.5)?;
    let t_hat = opts.f64_or("t-hat", 2.0 * t)?;
    let lb = GlobalLowerBound::new(topology::path(d + 1), eps, eps, t, t_hat, eps / 5.0);
    let params = Params::recommended(eps, t_hat).map_err(|e| e.to_string())?;
    let (reports, indistinguishable) =
        lb.verify_indistinguishable(|| vec![AOpt::new(params); d + 1]);
    let mut table = Table::new(vec!["execution", "endpoint skew", "max skew"]);
    for r in &reports {
        table.row(vec![
            format!("{:?}", r.execution),
            format!("{:.4}", r.endpoint_skew),
            format!("{:.4}", r.max_skew),
        ]);
    }
    println!("Theorem 7.2 on a path of D = {d} (ε = {eps}, 𝒯 = {t}, 𝒯̂ = {t_hat}):");
    println!(
        "ϱ = {:.4}, predicted floor (1+ϱ)D𝒯 = {:.4}\n",
        lb.rho(),
        lb.predicted_skew()
    );
    println!("{table}");
    println!("locally indistinguishable at every node: {indistinguishable}");
    println!(
        "A^opt upper bound 𝒢 = {:.4}; forced/𝒢 = {:.2}",
        params.global_skew_bound(d as u32),
        reports[2].endpoint_skew / params.global_skew_bound(d as u32)
    );
    Ok(())
}

fn cmd_lb_local(opts: &Options) -> Result<(), String> {
    let b = opts.usize_or("b", 4)?;
    let stages = opts.usize_or("stages", 2)?;
    let eps = opts.f64_or("eps", 0.2)?;
    let t = opts.f64_or("t", 1.0)?;
    let alpha = 1.0 - eps;
    let lb = LocalLowerBound::new(b, stages, eps, t, alpha);
    let algo = opts.str_or("algo", "nosync");
    let reports = match algo {
        "nosync" => lb.run(|n| vec![NoSync; n]),
        "aopt" => {
            let params = Params::recommended(eps, t).map_err(|e| e.to_string())?;
            lb.run(|n| vec![AOpt::new(params); n])
        }
        "jump" => {
            let params = Params::recommended(eps, t).map_err(|e| e.to_string())?;
            lb.run(|n| vec![AOptJump::new(params); n])
        }
        other => return Err(format!("lb-local supports nosync|aopt|jump, got `{other}`")),
    };
    println!(
        "Theorem 7.7 construction: D' = {}, b = {b}, {stages} stages, vs {algo}\n",
        lb.d_prime()
    );
    let mut table = Table::new(vec!["stage", "pair", "distance", "skew", "target"]);
    for r in &reports {
        table.row(vec![
            r.stage.to_string(),
            format!("v{}..v{}", r.ahead, r.behind),
            r.distance.to_string(),
            format!("{:.4}", r.skew),
            format!("{:.4}", r.target),
        ]);
    }
    println!("{table}");
    println!(
        "guaranteed final neighbour skew (when b ≥ Thm 7.7's threshold): {:.4}",
        lb.guaranteed_final_skew()
    );
    Ok(())
}
