//! Umbrella crate for the reproduction of Lenzen, Locher & Wattenhofer,
//! *Tight Bounds for Clock Synchronization* (PODC 2009 / J. ACM 2010).
//!
//! Re-exports the workspace crates under stable module names. See the
//! individual crates for details:
//!
//! * [`time`] — clocks, rate schedules, drift bounds, condition checkers.
//! * [`graph`] — network topologies and distance computations.
//! * [`sim`] — the deterministic discrete-event execution engine.
//! * [`core`] — the `A^opt` algorithm, its variants, and baselines.
//! * [`adversary`] — the paper's worst-case execution constructions.
//! * [`analysis`] — skew traces, legal-state checking, accounting.
//! * [`sweep`] — the parallel, deterministic experiment-sweep orchestrator.
//! * [`chaos`] — seeded fault-injection scenarios, the invariant-oracle
//!   batch runner, and automatic execution shrinking.
//! * [`forensics`] — trace parsing, happened-before reconstruction, skew
//!   provenance (blame), and Chrome trace-event export.
//! * [`telemetry`] — streaming `gcs-heartbeat/v1` run progress and the
//!   `gcs top` status rendering.
//! * [`bench`] — the experiment harness and `gcs bench diff` artifact
//!   comparison.
//! * [`serve`] — the `gcs serve` daemon: admission-controlled job
//!   submission over HTTP/1.1 with spec-hash result caching and JSONL
//!   streaming sessions.

#![forbid(unsafe_code)]

pub use gcs_adversary as adversary;
pub use gcs_analysis as analysis;
pub use gcs_bench as bench;
pub use gcs_chaos as chaos;
pub use gcs_core as core;
pub use gcs_forensics as forensics;
pub use gcs_graph as graph;
pub use gcs_serve as serve;
pub use gcs_sim as sim;
pub use gcs_sweep as sweep;
pub use gcs_telemetry as telemetry;
pub use gcs_time as time;
