//! CLI-level integration tests for the forensics and watchdog paths: the
//! `gcs` binary itself is driven end to end via `CARGO_BIN_EXE_gcs`.
//!
//! Covered contracts:
//! * `gcs run --watchdog` exits non-zero when an invariant breaks
//!   (κ scaled below the Eq. (4) minimum);
//! * on a fixed-seed wavefront run, `gcs trace blame` names the same peak
//!   local-skew pair as the run's own online observer (the ISSUE-3
//!   acceptance criterion);
//! * `gcs trace export --chrome` emits valid Chrome trace-event JSON;
//! * `gcs replay-check` exits 0 / 2 / 1 for identical / diverging /
//!   unreadable streams;
//! * `--profile` leaves the deterministic event stream byte-identical.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gcs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gcs"))
        .args(args)
        .output()
        .expect("failed to spawn gcs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("gcs-cli-forensics-{}-{name}", std::process::id()));
    path
}

/// The fixed-seed wavefront fixture shared by the forensics tests:
/// F2's flipping-boundary adversary on a path, seed 42.
const WAVEFRONT: &[&str] = &[
    "run",
    "--topology",
    "path:8",
    "--delays",
    "wavefront",
    "--rates",
    "gradient",
    "--eps",
    "0.05",
    "--t",
    "0.5",
    "--horizon",
    "40",
];

#[test]
fn watchdog_violation_exits_nonzero() {
    // κ at 5% of the Eq. (4) minimum under the F2 wavefront adversary: the
    // paper predicts the legal-state invariant cannot be maintained, and
    // the watchdog must catch it.
    let output = gcs(&[
        "run",
        "--topology",
        "path:6",
        "--eps",
        "0.05",
        "--t",
        "0.5",
        "--delays",
        "wavefront",
        "--rates",
        "gradient",
        "--horizon",
        "120",
        "--kappa-factor",
        "0.05",
        "--watchdog",
    ]);
    assert!(
        !output.status.success(),
        "a tripped watchdog must exit non-zero"
    );
    let out = stdout(&output);
    assert!(out.contains("watchdog:"), "{out}");
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("invariant watchdog tripped"),
        "stderr must carry the failure"
    );
}

#[test]
fn healthy_watchdog_run_exits_zero() {
    let output = gcs(&[
        "run",
        "--topology",
        "path:4",
        "--horizon",
        "30",
        "--watchdog",
    ]);
    assert!(output.status.success());
    assert!(stdout(&output).contains("all invariants held"));
}

/// Extracts `(ahead, behind)` from the run table's
/// `worst local skew … (vA − vB at t = …)` line.
fn observer_pair(run_stdout: &str) -> (usize, usize) {
    let line = run_stdout
        .lines()
        .find(|l| l.contains("worst local skew"))
        .expect("run table has a local-skew row");
    let open = line.find("(v").expect("pair annotation");
    let rest = &line[open + 2..];
    let ahead: usize = rest[..rest.find(' ').unwrap()].parse().unwrap();
    let v2 = rest.find("v").map(|i| &rest[i + 1..]).unwrap();
    let behind: usize = v2[..v2.find(' ').unwrap()].parse().unwrap();
    (ahead, behind)
}

#[test]
fn blame_chain_matches_observer_peak_pair() {
    let events = tmp("wavefront.jsonl");
    let mut args: Vec<&str> = WAVEFRONT.to_vec();
    let events_str = events.to_str().unwrap();
    args.extend(["--events", events_str]);
    let run = gcs(&args);
    assert!(run.status.success(), "{}", stdout(&run));
    let (ahead, behind) = observer_pair(&stdout(&run));

    let blame = gcs(&["trace", "blame", events_str, "--end", "46"]);
    assert!(blame.status.success());
    let out = stdout(&blame);
    assert!(
        out.contains(&format!("on edge {ahead}-{behind} ({ahead} ahead)")),
        "blame peak pair must match the observer pair (v{ahead} − v{behind}):\n{out}"
    );
    // The chains explain exactly those endpoints.
    assert!(
        out.contains(&format!("causal chain of node {ahead} at")),
        "{out}"
    );
    assert!(
        out.contains(&format!("causal chain of node {behind} at")),
        "{out}"
    );
    // The wavefront mechanism is visible: at least one hop and an origin.
    assert!(out.contains("deliver"), "{out}");
    assert!(out.contains("origin:"), "{out}");

    let _ = std::fs::remove_file(&events);
}

#[test]
fn trace_summary_reports_stable_counts() {
    let events = tmp("summary.jsonl");
    let events_str = events.to_str().unwrap();
    let mut args: Vec<&str> = WAVEFRONT.to_vec();
    args.extend(["--events", events_str]);
    assert!(gcs(&args).status.success());

    let summary = gcs(&["trace", "summary", events_str]);
    assert!(summary.status.success());
    let out = stdout(&summary);
    let lines = std::fs::read_to_string(&events).unwrap().lines().count();
    assert!(
        out.contains(&format!("trace: {lines} events, 8 nodes, 7 edges")),
        "summary header must count every stream line:\n{out}"
    );
    assert!(out.contains("per node:"), "{out}");
    assert!(out.contains("per edge:"), "{out}");

    let _ = std::fs::remove_file(&events);
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let events = tmp("chrome.jsonl");
    let events_str = events.to_str().unwrap();
    let mut args: Vec<&str> = WAVEFRONT.to_vec();
    args.extend(["--events", events_str]);
    assert!(gcs(&args).status.success());

    let export = gcs(&["trace", "export", events_str, "--chrome"]);
    assert!(export.status.success());
    let json = stdout(&export);
    let parsed = clock_sync::forensics::parse_json(&json).expect("valid JSON on stdout");
    let records = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(records.len() > 100, "a real run yields many records");
    for r in records {
        assert!(r.get("ph").is_some(), "every record has a phase");
    }

    // --out writes the same JSON to a file.
    let out_path = tmp("chrome.trace.json");
    let out_str = out_path.to_str().unwrap();
    let export = gcs(&["trace", "export", events_str, "--chrome", "--out", out_str]);
    assert!(export.status.success());
    assert_eq!(std::fs::read_to_string(&out_path).unwrap(), json);

    let _ = std::fs::remove_file(&events);
    let _ = std::fs::remove_file(&out_path);
}

#[test]
fn profile_flag_leaves_event_stream_byte_identical() {
    let plain = tmp("plain.jsonl");
    let profiled = tmp("profiled.jsonl");
    let (plain_str, profiled_str) = (plain.to_str().unwrap(), profiled.to_str().unwrap());

    let mut args: Vec<&str> = WAVEFRONT.to_vec();
    args.extend(["--events", plain_str]);
    assert!(gcs(&args).status.success());

    let mut args: Vec<&str> = WAVEFRONT.to_vec();
    args.extend(["--events", profiled_str, "--profile"]);
    let run = gcs(&args);
    assert!(run.status.success());
    assert!(
        stdout(&run).contains("engine profile:"),
        "--profile must print the phase breakdown"
    );

    // The CLI's own replay-check is the comparator: exit 0 = identical.
    let check = gcs(&["replay-check", plain_str, profiled_str]);
    assert!(
        check.status.success(),
        "--profile changed the event stream:\n{}",
        stdout(&check)
    );

    let _ = std::fs::remove_file(&plain);
    let _ = std::fs::remove_file(&profiled);
}

#[test]
fn replay_check_exit_codes_and_context() {
    let a = tmp("rc-a.jsonl");
    let b = tmp("rc-b.jsonl");
    let (a_str, b_str) = (a.to_str().unwrap(), b.to_str().unwrap());
    let lines: Vec<String> = (0..10)
        .map(|i| format!("{{\"kind\":\"send\",\"node\":0,\"t\":{i},\"hw\":{i}}}"))
        .collect();
    std::fs::write(&a, lines.join("\n") + "\n").unwrap();
    std::fs::write(&b, lines.join("\n") + "\n").unwrap();

    let identical = gcs(&["replay-check", a_str, b_str]);
    assert_eq!(identical.status.code(), Some(0));
    assert!(stdout(&identical).contains("byte-identical"));

    let mut tampered = lines.clone();
    tampered[6] = "{\"kind\":\"send\",\"node\":1,\"t\":6,\"hw\":6}".into();
    std::fs::write(&b, tampered.join("\n") + "\n").unwrap();
    let diverged = gcs(&["replay-check", a_str, b_str]);
    assert_eq!(
        diverged.status.code(),
        Some(2),
        "divergence must exit with the documented code 2"
    );
    let out = stdout(&diverged);
    assert!(out.contains("diverge at line 7"), "{out}");
    assert!(
        out.contains("\"node\":0"),
        "context shows the left line: {out}"
    );
    assert!(
        out.contains("\"node\":1"),
        "context shows the right line: {out}"
    );
    assert!(
        out.contains("\"t\":5"),
        "context shows preceding common lines: {out}"
    );

    let unreadable = gcs(&["replay-check", a_str, "/nonexistent-gcs-stream.jsonl"]);
    assert_eq!(unreadable.status.code(), Some(1));

    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}
