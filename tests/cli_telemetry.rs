//! CLI-level integration tests for the live-telemetry pipeline: the `gcs`
//! binary driven end to end via `CARGO_BIN_EXE_gcs`.
//!
//! Covered contracts:
//! * `gcs run --threads 4 --metrics --watchdog` produces metrics JSON and
//!   watchdog verdicts byte/field-identical to the sequential run (the
//!   ISSUE-6 acceptance criterion);
//! * `--heartbeat` streams with `--deterministic-heartbeat` are
//!   byte-identical across `--threads 1/2/4` and across repeated
//!   same-seed runs, with wall-clock fields zeroed;
//! * `gcs sweep --heartbeat` streams are byte-identical at any `--jobs`;
//! * `gcs top` renders files and stdin, tolerating torn streams;
//! * `--threads` with a no-lookahead delay model fails fast, and
//!   `--allow-sequential-fallback` is the escape hatch;
//! * `gcs bench diff` exits 0 / 1 / 2 for clean / regressed / malformed
//!   comparisons;
//! * `--profile-json` emits a parseable `gcs-profile/v1` object.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn gcs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gcs"))
        .args(args)
        .output()
        .expect("failed to spawn gcs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("gcs-cli-telemetry-{}-{name}", std::process::id()));
    path
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// A fixed-seed parallelizable run: constant delays promise a lookahead,
/// so `--threads K>1` executes real parallel windows.
const CONST_RUN: &[&str] = &[
    "run",
    "--topology",
    "grid:4x4",
    "--delays",
    "const",
    "--rates",
    "gradient",
    "--eps",
    "0.05",
    "--t",
    "0.5",
    "--horizon",
    "40",
];

#[test]
fn parallel_metrics_and_watchdog_match_sequential() {
    let run = |threads: &str, metrics: &PathBuf| {
        let metrics = metrics.to_str().unwrap().to_string();
        let mut args: Vec<&str> = CONST_RUN.to_vec();
        args.extend_from_slice(&["--threads", threads, "--watchdog", "--metrics", &metrics]);
        let output = gcs(&args);
        assert!(
            output.status.success(),
            "run --threads {threads} failed: {}",
            stderr(&output)
        );
        stdout(&output)
    };
    let m1 = tmp("metrics-t1.json");
    let m4 = tmp("metrics-t4.json");
    let out1 = run("1", &m1);
    let out4 = run("4", &m4);
    let (json1, json4) = (read(&m1), read(&m4));
    assert!(json1.starts_with("{\"schema\":\"gcs-metrics/v1\""));
    assert_eq!(json1, json4, "metrics JSON must be byte-identical");
    for out in [&out1, &out4] {
        assert!(out.contains("watchdog: all invariants held"), "{out}");
        assert!(out.contains("worst global skew"), "{out}");
    }
    // The report tables (skews, message counts, metrics snapshot) agree
    // line for line; only thread-dependent notes may differ.
    let table = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("skew") || l.contains("events") || l.contains("deliveries"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(table(&out1), table(&out4));
    let _ = std::fs::remove_file(m1);
    let _ = std::fs::remove_file(m4);
}

#[test]
fn deterministic_heartbeats_are_byte_identical_across_threads_and_repeats() {
    let run = |threads: &str, path: &PathBuf| {
        let hb = path.to_str().unwrap().to_string();
        let mut args: Vec<&str> = CONST_RUN.to_vec();
        args.extend_from_slice(&[
            "--threads",
            threads,
            "--heartbeat",
            &hb,
            "--heartbeat-every",
            "2",
            "--deterministic-heartbeat",
        ]);
        let output = gcs(&args);
        assert!(output.status.success(), "{}", stderr(&output));
    };
    let base = tmp("hb-t1.jsonl");
    run("1", &base);
    let reference = read(&base);
    assert!(reference.lines().count() >= 10, "expected a real stream");
    assert!(reference.contains("\"kind\":\"summary\""));
    for line in reference.lines() {
        assert!(
            line.contains("\"wall_ms\":0,\"events_per_sec\":0"),
            "{line}"
        );
        assert!(
            !line.contains("\"threads\""),
            "deterministic summaries omit wall-derived parallel fields: {line}"
        );
    }
    for threads in ["1", "2", "4"] {
        let path = tmp(&format!("hb-t{threads}-again.jsonl"));
        run(threads, &path);
        assert_eq!(
            read(&path),
            reference,
            "--threads {threads}: heartbeat stream diverged"
        );
        let _ = std::fs::remove_file(path);
    }
    let _ = std::fs::remove_file(base);
}

#[test]
fn sweep_heartbeats_are_byte_identical_at_any_jobs_value() {
    let run = |jobs: &str, path: &PathBuf| {
        let hb = path.to_str().unwrap().to_string();
        let output = gcs(&[
            "sweep",
            "--topologies",
            "path:5,ring:6",
            "--seeds",
            "2",
            "--horizon",
            "20",
            "--jobs",
            jobs,
            "--heartbeat",
            &hb,
            "--deterministic-heartbeat",
        ]);
        assert!(output.status.success(), "{}", stderr(&output));
    };
    let base = tmp("sweep-hb-j1.jsonl");
    run("1", &base);
    let reference = read(&base);
    assert_eq!(reference.lines().count(), 4, "one record per job");
    assert!(reference.contains("\"kind\":\"sweep\""));
    assert!(reference.contains("\"jobs_done\":4,\"jobs_total\":4"));
    let again = tmp("sweep-hb-j4.jsonl");
    run("4", &again);
    assert_eq!(
        read(&again),
        reference,
        "--jobs 4: sweep heartbeats diverged"
    );
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(again);
}

#[test]
fn top_renders_files_and_stdin() {
    let hb = tmp("top-input.jsonl");
    let hb_str = hb.to_str().unwrap().to_string();
    let mut args: Vec<&str> = CONST_RUN.to_vec();
    args.extend_from_slice(&["--heartbeat", &hb_str, "--watchdog"]);
    assert!(gcs(&args).status.success());

    let output = gcs(&["top", hb_str.as_str()]);
    assert!(output.status.success());
    let text = stdout(&output);
    assert!(text.contains("heartbeat record(s)"), "{text}");
    assert!(text.contains("(summary)"), "{text}");
    assert!(text.contains("watchdog ok"), "{text}");

    // Same stream over stdin, with a torn trailing line: skipped, not fatal.
    let mut torn = read(&hb);
    torn.push_str("{\"schema\":\"gcs-heartbeat/v1\",\"kind\":\"beat\",\"se");
    let mut child = Command::new(env!("CARGO_BIN_EXE_gcs"))
        .args(["top", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("failed to spawn gcs top -");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(torn.as_bytes())
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success());
    assert!(stdout(&output).contains("1 line(s) skipped"));
    let _ = std::fs::remove_file(hb);
}

#[test]
fn threads_without_lookahead_fail_fast_unless_fallback_allowed() {
    // Uniform random delays have a zero delay floor: no lookahead, no
    // parallel execution. Asking for threads must be a hard error ...
    let output = gcs(&[
        "run",
        "--topology",
        "path:6",
        "--horizon",
        "20",
        "--threads",
        "2",
    ]);
    assert!(!output.status.success());
    let err = stderr(&output);
    assert!(err.contains("no positive delay lower bound"), "{err}");
    assert!(err.contains("--allow-sequential-fallback"), "{err}");

    // ... and the escape hatch downgrades to a sequential run, loudly.
    let output = gcs(&[
        "run",
        "--topology",
        "path:6",
        "--horizon",
        "20",
        "--threads",
        "2",
        "--allow-sequential-fallback",
    ]);
    assert!(output.status.success(), "{}", stderr(&output));
    assert!(stderr(&output).contains("running sequentially"));
}

#[test]
fn bench_diff_exit_codes_gate_regressions() {
    let artifact = |events: f64, allocs: f64| {
        format!(
            "{{\"schema\":\"gcs-bench-result/v1\",\"bench\":\"engine_hotpath\",\
             \"config\":{{\"quick\":\"false\"}},\
             \"metrics\":{{\"events_per_sec/n=64\":{events},\"allocs_per_event/n=64\":{allocs}}}}}"
        )
    };
    let old = tmp("bench-old.json");
    std::fs::write(&old, artifact(5_000_000.0, 0.0)).unwrap();
    let old = old.to_str().unwrap().to_string();

    // Within tolerance: exit 0, report says OK.
    let ok = tmp("bench-ok.json");
    std::fs::write(&ok, artifact(4_900_000.0, 0.0)).unwrap();
    let output = gcs(&["bench", "diff", &old, ok.to_str().unwrap()]);
    assert!(output.status.success(), "{}", stdout(&output));
    assert!(stdout(&output).contains("OK: no regressions"));

    // Throughput dropped 40%: exit 1, report names the metric.
    let bad = tmp("bench-bad.json");
    std::fs::write(&bad, artifact(3_000_000.0, 0.0)).unwrap();
    let output = gcs(&["bench", "diff", &old, bad.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1), "{}", stdout(&output));
    let text = stdout(&output);
    assert!(text.contains("events_per_sec/n=64"), "{text}");
    assert!(text.contains("FAIL"), "{text}");

    // A generous tolerance waves the same drop through.
    let output = gcs(&[
        "bench",
        "diff",
        &old,
        bad.to_str().unwrap(),
        "--tolerance",
        "0.75",
    ]);
    assert!(output.status.success(), "{}", stdout(&output));

    // Alloc regressions gate too (lower-is-better family).
    let leaky = tmp("bench-leaky.json");
    std::fs::write(&leaky, artifact(5_000_000.0, 2.5)).unwrap();
    let output = gcs(&["bench", "diff", &old, leaky.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(1));

    // Malformed artifacts are usage errors: exit 2.
    let junk = tmp("bench-junk.json");
    std::fs::write(&junk, "{\"schema\":\"other/v1\"}").unwrap();
    let output = gcs(&["bench", "diff", &old, junk.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    let output = gcs(&["bench", "frobnicate", &old, &old]);
    assert_eq!(output.status.code(), Some(2));

    for p in [
        "bench-ok.json",
        "bench-bad.json",
        "bench-leaky.json",
        "bench-junk.json",
        "bench-old.json",
    ] {
        let _ = std::fs::remove_file(tmp(p));
    }
}

#[test]
fn committed_bench_artifacts_diff_clean_against_themselves() {
    // The repository's own BENCH_*.json artifacts must parse and compare
    // clean against themselves — the CI gate depends on both.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for entry in std::fs::read_dir(&root).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let p = path.to_str().unwrap();
        let output = gcs(&["bench", "diff", p, p]);
        assert!(output.status.success(), "{name}: {}", stderr(&output));
        assert!(stdout(&output).contains("OK: no regressions"), "{name}");
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the committed artifacts, saw {checked}"
    );
}

#[test]
fn profile_json_is_emitted_and_consistent() {
    let mut args: Vec<&str> = CONST_RUN.to_vec();
    args.extend_from_slice(&["--threads", "2", "--profile-json", "-"]);
    let output = gcs(&args);
    assert!(output.status.success(), "{}", stderr(&output));
    let text = stdout(&output);
    let line = text
        .lines()
        .find(|l| l.starts_with("{\"schema\":\"gcs-profile/v1\""))
        .expect("profile JSON line on stdout");
    for field in [
        "\"events\":",
        "\"dispatch_seconds\":",
        "\"par_workers\":2",
        "\"par_windows\":",
        "\"par_replay_seconds\":",
        "\"par_wall_seconds\":",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
}
