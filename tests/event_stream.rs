//! Determinism and watchdog integration tests for the observability layer.
//!
//! The engine promises that a fixed (seed, topology, rate schedule) triple
//! produces a *byte-identical* JSONL event stream on every run. These tests
//! pin that promise down with a property test over random environments, and
//! exercise the invariant watchdog on a deliberately broken parameterization.

use clock_sync::analysis::{diff_streams, InvariantWatchdog, JsonlWriter, WatchdogViolation};
use clock_sync::core::{AOpt, Params};
use clock_sync::graph::topology;
use clock_sync::sim::{rates, Engine, UniformDelay};
use clock_sync::time::DriftBounds;
use proptest::prelude::*;

/// Runs `A^opt` on the given environment, recording every engine event as
/// JSONL into an in-memory buffer, and returns the stream.
fn record_stream(
    n: usize,
    p_edge: f64,
    graph_seed: u64,
    delay_seed: u64,
    rate_seed: u64,
    horizon: f64,
) -> String {
    let eps = 0.01;
    let t_max = 0.1;
    let params = Params::recommended(eps, t_max).unwrap();
    let g = topology::erdos_renyi(n, p_edge, graph_seed);
    let drift = DriftBounds::new(eps).unwrap();
    let schedules = rates::random_walk(n, drift, 3.0, horizon, rate_seed);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(t_max, delay_seed))
        .rate_schedules(schedules)
        .event_sink(JsonlWriter::new(Vec::new()))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(horizon);
    let bytes = engine.into_sink().finish().unwrap();
    String::from_utf8(bytes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed + topology ⇒ byte-identical event streams, across random
    /// environments. This is the contract `gcs replay-check` relies on.
    #[test]
    fn same_seed_runs_emit_identical_jsonl(
        n in 2usize..9,
        p_edge in 0.1f64..0.6,
        graph_seed in 0u64..400,
        delay_seed in 0u64..400,
        rate_seed in 0u64..400,
    ) {
        let a = record_stream(n, p_edge, graph_seed, delay_seed, rate_seed, 30.0);
        let b = record_stream(n, p_edge, graph_seed, delay_seed, rate_seed, 30.0);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(diff_streams(&a, &b), None);
    }

    /// Different delay seeds diverge — the identity above is not vacuous.
    #[test]
    fn different_seeds_diverge(
        n in 3usize..8,
        graph_seed in 0u64..200,
        delay_seed in 0u64..200,
    ) {
        let a = record_stream(n, 0.4, graph_seed, delay_seed, 11, 20.0);
        let b = record_stream(n, 0.4, graph_seed, delay_seed + 1000, 11, 20.0);
        prop_assert!(diff_streams(&a, &b).is_some());
    }
}

/// Running `A^opt` with κ forced far below the Eq. 4 minimum must trip the
/// legal-state watchdog (Def. 5.6), and the trip must carry event context.
#[test]
fn watchdog_trips_when_kappa_violates_eq4() {
    let eps = 0.01;
    let t_max = 0.1;
    let params = Params::recommended(eps, t_max)
        .unwrap()
        .with_kappa_factor_unchecked(0.01);
    assert!(params.kappa() < params.min_kappa());
    let n = 8;
    let g = topology::path(n);
    let drift = DriftBounds::new(eps).unwrap();
    let horizon = 60.0;
    let schedules = rates::random_walk(n, drift, 3.0, horizon, 5);
    let watchdog = InvariantWatchdog::new(&g, params, drift);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(t_max, 5))
        .rate_schedules(schedules)
        .event_sink(watchdog)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(horizon);
    let watchdog = engine.into_sink();
    let trip = watchdog
        .trip()
        .expect("κ below Eq. 4 must trip the watchdog");
    assert!(
        matches!(trip.violation, WatchdogViolation::LegalState(_)),
        "expected a Def. 5.6 legal-state violation, got {:?}",
        trip.violation
    );
    assert!(
        !trip.recent_events.is_empty(),
        "trip must carry ring-buffered event context"
    );
}

/// With the recommended (Eq. 4-respecting) parameters the watchdog stays
/// silent on the same environment.
#[test]
fn watchdog_stays_silent_with_recommended_params() {
    let eps = 0.01;
    let t_max = 0.1;
    let params = Params::recommended(eps, t_max).unwrap();
    let n = 8;
    let g = topology::path(n);
    let drift = DriftBounds::new(eps).unwrap();
    let horizon = 60.0;
    let schedules = rates::random_walk(n, drift, 3.0, horizon, 5);
    let watchdog = InvariantWatchdog::new(&g, params, drift);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(t_max, 5))
        .rate_schedules(schedules)
        .event_sink(watchdog)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(horizon);
    assert!(engine.sink().trip().is_none());
}
