//! Integration tests for the extension features: discrete ticks (§8.4),
//! the hardware envelope (§8.6), minimum send gaps (§6.1), piggybacking
//! (§1), adaptive `𝒯̂` (§8.1), and the beyond-model loss robustness.

use clock_sync::analysis::SkewObserver;
use clock_sync::core::{AOpt, AdaptiveAOpt, EnvelopeAOpt, MinGapAOpt, Params, PiggybackAOpt};
use clock_sync::graph::{topology, NodeId};
use clock_sync::sim::{rates, Engine, LossyDelay, Ticked, UniformDelay};
use clock_sync::time::DriftBounds;

const EPS: f64 = 0.02;
const T_MAX: f64 = 0.25;

fn params() -> Params {
    Params::recommended(EPS, T_MAX).unwrap()
}

fn drift() -> DriftBounds {
    DriftBounds::new(EPS).unwrap()
}

#[test]
fn ticked_a_opt_respects_bounds_when_ticks_are_fine() {
    // Ticks at 𝒯/16: granularity is negligible, bounds must hold as-is.
    let p = params();
    let n = 8;
    let g = topology::path(n);
    let schedules = rates::split(n, drift(), |v| v < n / 2);
    let mut observer = SkewObserver::new(&g);
    let mut engine = Engine::builder(g)
        .protocols(vec![Ticked::new(AOpt::new(p), T_MAX / 16.0); n])
        .delay_model(UniformDelay::new(T_MAX, 3))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(120.0, |e| observer.observe(e));
    assert!(observer.worst_global() <= p.global_skew_bound((n - 1) as u32) + 1e-9);
    assert!(observer.worst_local() <= p.local_skew_bound((n - 1) as u32) + 1e-9);
}

#[test]
fn ticked_a_opt_degrades_with_coarse_ticks() {
    let p = params();
    let n = 6;
    let run = |period: f64| {
        let g = topology::path(n);
        let schedules = rates::split(n, drift(), |v| v < n / 2);
        let mut observer = SkewObserver::new(&g);
        let mut engine = Engine::builder(g)
            .protocols(vec![Ticked::new(AOpt::new(p), period); n])
            .delay_model(UniformDelay::new(T_MAX, 3))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(120.0, |e| observer.observe(e));
        observer.worst_global()
    };
    let fine = run(T_MAX / 16.0);
    let coarse = run(4.0 * T_MAX);
    assert!(
        coarse > fine,
        "coarse ticks ({coarse}) should hurt vs fine ({fine})"
    );
}

#[test]
fn envelope_variant_stays_within_hardware_extremes_on_a_grid() {
    let p = params();
    let g = topology::grid(3, 3);
    let n = g.len();
    let schedules = rates::random_walk(n, drift(), 5.0, 100.0, 8);
    let mut engine = Engine::builder(g)
        .protocols(vec![EnvelopeAOpt::new(p); n])
        .delay_model(UniformDelay::new(T_MAX, 9))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(100.0, |e| {
        let hws: Vec<f64> = (0..n).map(|v| e.hardware_value(NodeId(v))).collect();
        let h_min = hws.iter().cloned().fold(f64::MAX, f64::min);
        let h_max = hws.iter().cloned().fold(f64::MIN, f64::max);
        for v in 0..n {
            let l = e.logical_value(NodeId(v));
            assert!(l >= h_min - 1e-9 && l <= h_max + 1e-9, "node {v} escaped");
        }
    });
}

#[test]
fn min_gap_and_plain_a_opt_agree_under_calm_conditions() {
    let p = params();
    let n = 6;
    let run_skew = |gapped: bool| {
        let g = topology::path(n);
        let schedules = rates::split(n, drift(), |v| v % 2 == 0);
        let mut observer = SkewObserver::new(&g);
        if gapped {
            let mut engine = Engine::builder(g)
                .protocols(vec![MinGapAOpt::new(p); n])
                .delay_model(UniformDelay::new(T_MAX, 4))
                .rate_schedules(schedules)
                .build();
            engine.wake_all_at(0.0);
            engine.run_until_observed(150.0, |e| observer.observe(e));
        } else {
            let mut engine = Engine::builder(g)
                .protocols(vec![AOpt::new(p); n])
                .delay_model(UniformDelay::new(T_MAX, 4))
                .rate_schedules(schedules)
                .build();
            engine.wake_all_at(0.0);
            engine.run_until_observed(150.0, |e| observer.observe(e));
        }
        observer.worst_global()
    };
    let plain = run_skew(false);
    let gapped = run_skew(true);
    // The εDH₀ premium is small at these parameters.
    let premium = 4.0 * EPS * n as f64 * p.h0();
    assert!(
        gapped <= plain + premium,
        "gapped {gapped} vs plain {plain}"
    );
}

#[test]
fn piggybacking_preserves_bounds_across_app_rates() {
    let p = params();
    let n = 6;
    for app_gap in [p.h0() / 4.0, p.h0() * 8.0] {
        let g = topology::path(n);
        let schedules = rates::split(n, drift(), |v| v < n / 2);
        let nodes: Vec<PiggybackAOpt> = (0..n)
            .map(|v| PiggybackAOpt::new(p, app_gap, v as u64 + 1))
            .collect();
        let mut observer = SkewObserver::new(&g);
        let mut engine = Engine::builder(g)
            .protocols(nodes)
            .delay_model(UniformDelay::new(T_MAX, 2))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(150.0, |e| observer.observe(e));
        assert!(
            observer.worst_global() <= p.global_skew_bound((n - 1) as u32) + 1e-9,
            "bound broken at app gap {app_gap}"
        );
    }
}

#[test]
fn adaptive_nodes_interop_with_unknown_delays_on_a_tree() {
    let n = 15;
    let g = topology::binary_tree(n);
    let d = g.diameter();
    let schedules = rates::random_walk(n, drift(), 6.0, 400.0, 12);
    let mut engine = Engine::builder(g)
        .protocols(vec![AdaptiveAOpt::new(EPS, 0.005); n])
        .delay_model(UniformDelay::new(T_MAX, 21))
        .rate_schedules(schedules)
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until(200.0);
    let converged = *engine.protocol(NodeId(0)).params();
    assert!(converged.t_hat() >= 0.05 && converged.t_hat() <= 4.2 * T_MAX / (1.0 - EPS));
    let mut worst: f64 = 0.0;
    engine.run_until_observed(400.0, |e| {
        let clocks = e.logical_values();
        let max = clocks.iter().cloned().fold(f64::MIN, f64::max);
        let min = clocks.iter().cloned().fold(f64::MAX, f64::min);
        worst = worst.max(max - min);
    });
    assert!(worst <= converged.global_skew_bound(d) + 1e-9);
}

#[test]
fn loss_degrades_gracefully_and_drops_are_counted() {
    let p = params();
    let n = 8;
    let run = |loss: f64| {
        let g = topology::path(n);
        let schedules = rates::split(n, drift(), |v| v < n / 2);
        let mut observer = SkewObserver::new(&g);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(p); n])
            .delay_model(LossyDelay::new(UniformDelay::new(T_MAX, 7), loss, 13))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(150.0, |e| observer.observe(e));
        (observer.worst_global(), engine.message_stats().dropped)
    };
    let (clean, zero_drops) = run(0.0);
    let (lossy, drops) = run(0.3);
    assert_eq!(zero_drops, 0);
    assert!(drops > 0);
    // Graceful: within a small constant of the clean run, not a blow-up.
    assert!(
        lossy <= 4.0 * clean + p.kappa(),
        "lossy {lossy} vs clean {clean}"
    );
}
