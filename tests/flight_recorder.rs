//! CLI-level integration tests for the always-on flight recorder and the
//! streaming skew-field layer: the `gcs` binary driven end to end via
//! `CARGO_BIN_EXE_gcs`.
//!
//! Covered contracts:
//! * the recorder dump of the golden F2 wavefront fixture is byte-identical
//!   to the recorded event stream at `--threads 1/2/4` and across repeated
//!   same-seed runs (the ISSUE-8 acceptance criterion);
//! * a binary `.gcsrec` dump round-trips through `gcs trace summary`
//!   identically to the JSONL form;
//! * a crafted watchdog violation (`--kappa-factor 0.05`) dumps a window
//!   whose `gcs trace blame` chain names the same peak local-skew pair as
//!   the run's own online observer;
//! * `gcs chaos run` attaches a dump on violation, identical at 1 and 4
//!   threads, and `gcs trace blame` processes it end to end;
//! * `--skew-field` streams are byte-identical across thread counts and
//!   render under `gcs top`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gcs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gcs"))
        .args(args)
        .output()
        .expect("failed to spawn gcs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("gcs-flight-recorder-{}-{name}", std::process::id()));
    path
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// The golden F2 event stream: the same fixed-seed run pinned by
/// `tests/golden_event_stream.rs`. It fits inside the recorder window, so
/// a dump of this run is the *complete* stream.
const FIXTURE: &str = include_str!("fixtures/f2_wavefront_events.jsonl");

/// The fixed-seed wavefront fixture: F2's flipping-boundary adversary on a
/// path, seed 42 — the run that produced [`FIXTURE`].
const WAVEFRONT: &[&str] = &[
    "run",
    "--topology",
    "path:8",
    "--delays",
    "wavefront",
    "--rates",
    "gradient",
    "--eps",
    "0.05",
    "--t",
    "0.5",
    "--horizon",
    "40",
];

#[test]
fn recorder_dump_is_golden_and_thread_count_invariant() {
    let run_dump = |name: &str, threads: &str| {
        let dump = tmp(name);
        let dump_str = dump.to_str().unwrap().to_string();
        let mut args: Vec<&str> = WAVEFRONT.to_vec();
        args.extend(["--dump-recorder", &dump_str, "--threads", threads]);
        let run = gcs(&args);
        assert!(
            run.status.success(),
            "run --threads {threads} failed: {}",
            stderr(&run)
        );
        assert!(
            stdout(&run).contains("recorder dump written to"),
            "{}",
            stdout(&run)
        );
        let text = read(&dump);
        let _ = std::fs::remove_file(&dump);
        text
    };

    let t1 = run_dump("golden-t1.jsonl", "1");
    assert_eq!(
        t1, FIXTURE,
        "the recorder window of the F2 run must reproduce the golden stream byte-for-byte"
    );
    assert_eq!(
        t1,
        run_dump("golden-t2.jsonl", "2"),
        "--threads 2 dump diverged"
    );
    assert_eq!(
        t1,
        run_dump("golden-t4.jsonl", "4"),
        "--threads 4 dump diverged"
    );
    assert_eq!(
        t1,
        run_dump("golden-rerun.jsonl", "1"),
        "same-seed rerun diverged"
    );
}

#[test]
fn binary_dump_round_trips_through_trace() {
    let bin = tmp("window.gcsrec");
    let bin_str = bin.to_str().unwrap().to_string();
    let mut args: Vec<&str> = WAVEFRONT.to_vec();
    args.extend(["--dump-recorder", &bin_str]);
    assert!(gcs(&args).status.success());

    let bytes = std::fs::read(&bin).unwrap();
    assert!(
        bytes.starts_with(b"GCSREC01"),
        "binary dumps carry the magic"
    );

    // `gcs trace` must sniff the magic and produce the same summary as the
    // JSONL form of the same window.
    let jsonl = tmp("window.jsonl");
    let jsonl_str = jsonl.to_str().unwrap().to_string();
    std::fs::write(&jsonl, FIXTURE).unwrap();
    let from_bin = gcs(&["trace", "summary", &bin_str]);
    let from_jsonl = gcs(&["trace", "summary", &jsonl_str]);
    assert!(from_bin.status.success(), "{}", stderr(&from_bin));
    assert_eq!(
        stdout(&from_bin),
        stdout(&from_jsonl),
        "binary and JSONL dumps must summarize identically"
    );

    let _ = std::fs::remove_file(&bin);
    let _ = std::fs::remove_file(&jsonl);
}

/// Extracts `(ahead, behind)` from the run table's
/// `worst local skew … (vA − vB at t = …)` line.
fn observer_pair(run_stdout: &str) -> (usize, usize) {
    let line = run_stdout
        .lines()
        .find(|l| l.contains("worst local skew"))
        .expect("run table has a local-skew row");
    let open = line.find("(v").expect("pair annotation");
    let rest = &line[open + 2..];
    let ahead: usize = rest[..rest.find(' ').unwrap()].parse().unwrap();
    let v2 = rest.find('v').map(|i| &rest[i + 1..]).unwrap();
    let behind: usize = v2[..v2.find(' ').unwrap()].parse().unwrap();
    (ahead, behind)
}

#[test]
fn watchdog_trip_dump_is_blameable_and_matches_observer() {
    // κ at 5% of the Eq. (4) minimum under the F2 wavefront adversary: the
    // watchdog must trip, and the run must leave a recorder dump whose
    // offline blame chain explains the same peak pair the online observer
    // reported.
    let dump = tmp("trip.jsonl");
    let dump_str = dump.to_str().unwrap().to_string();
    let output = gcs(&[
        "run",
        "--topology",
        "path:6",
        "--eps",
        "0.05",
        "--t",
        "0.5",
        "--delays",
        "wavefront",
        "--rates",
        "gradient",
        "--horizon",
        "120",
        "--kappa-factor",
        "0.05",
        "--watchdog",
        "--dump-recorder",
        &dump_str,
    ]);
    assert!(!output.status.success(), "the watchdog must trip");
    let out = stdout(&output);
    assert!(out.contains("recorder dump written to"), "{out}");
    let (ahead, behind) = observer_pair(&out);

    let blame = gcs(&["trace", "blame", &dump_str, "--end", "126"]);
    assert!(blame.status.success(), "{}", stderr(&blame));
    let blame_out = stdout(&blame);
    assert!(
        blame_out.contains(&format!("on edge {ahead}-{behind} ({ahead} ahead)")),
        "blame peak pair must match the observer pair (v{ahead} − v{behind}):\n{blame_out}"
    );
    assert!(
        blame_out.contains(&format!("causal chain of node {ahead} at")),
        "{blame_out}"
    );

    let _ = std::fs::remove_file(&dump);
}

/// A scenario whose out-of-model rate attack reliably trips the oracle
/// (the `gcs chaos` crate pins this same spec in its own tests).
const RATE_ATTACK: &str = "\
topology = path:6
algo = aopt
eps = 0.02
t = 0.2
delay = const
rates = nominal
horizon = 40
seed = 11
fault = rate:5..40:0..1:0.9
";

#[test]
fn chaos_violation_dump_is_thread_invariant_and_blameable() {
    let spec = tmp("attack.chaos");
    let spec_str = spec.to_str().unwrap().to_string();
    std::fs::write(&spec, RATE_ATTACK).unwrap();

    let run_dump = |name: &str, threads: &str| {
        let dump = tmp(name);
        let dump_str = dump.to_str().unwrap().to_string();
        let output = gcs(&[
            "chaos",
            "run",
            &spec_str,
            "--threads",
            threads,
            "--dump-recorder",
            &dump_str,
        ]);
        // An expected violation is exit 0 — not a finding.
        assert!(
            output.status.success(),
            "chaos run --threads {threads}: {}",
            stderr(&output)
        );
        let out = stdout(&output);
        assert!(out.contains("recorder dump written to"), "{out}");
        let text = read(&dump);
        let _ = std::fs::remove_file(&dump);
        (text, dump_str)
    };

    let (t1, dump1) = run_dump("chaos-t1.jsonl", "1");
    let (t4, _) = run_dump("chaos-t4.jsonl", "4");
    assert_eq!(t1, t4, "chaos dumps must be thread-count invariant");
    assert!(!t1.is_empty());

    // The dump feeds the full forensics pipeline end to end.
    let dump = tmp("chaos-blame.jsonl");
    std::fs::write(&dump, &t1).unwrap();
    let dump_str = dump.to_str().unwrap().to_string();
    let blame = gcs(&["trace", "blame", &dump_str]);
    assert!(
        blame.status.success(),
        "blame over the chaos dump failed: {}",
        stderr(&blame)
    );
    assert!(
        stdout(&blame).contains("causal chain"),
        "{}",
        stdout(&blame)
    );
    let _ = std::fs::remove_file(&dump);

    // Without --dump-recorder the dump lands next to the scenario.
    let output = gcs(&["chaos", "run", &spec_str]);
    assert!(output.status.success());
    let default_dump = PathBuf::from(format!(
        "{}.dump.jsonl",
        spec_str.strip_suffix(".chaos").unwrap()
    ));
    assert_eq!(
        read(&default_dump),
        t1,
        "default dump path must carry the same window"
    );
    let _ = std::fs::remove_file(&default_dump);
    let _ = std::fs::remove_file(&spec);
    let _ = dump1;
}

#[test]
fn skew_field_stream_is_thread_invariant_and_renders() {
    let run_field = |name: &str, threads: &str| {
        let field = tmp(name);
        let field_str = field.to_str().unwrap().to_string();
        let mut args: Vec<&str> = WAVEFRONT.to_vec();
        args.extend(["--skew-field", &field_str, "--threads", threads]);
        let run = gcs(&args);
        assert!(
            run.status.success(),
            "run --threads {threads} failed: {}",
            stderr(&run)
        );
        assert!(stdout(&run).contains("skew-field log written to"));
        let text = read(&field);
        let _ = std::fs::remove_file(&field);
        text
    };

    let t1 = run_field("field-t1.jsonl", "1");
    assert_eq!(
        t1,
        run_field("field-t2.jsonl", "2"),
        "--threads 2 stream diverged"
    );
    assert_eq!(
        t1,
        run_field("field-t4.jsonl", "4"),
        "--threads 4 stream diverged"
    );

    // Every line is a schema-tagged JSON record; the stream ends in a
    // summary carrying the run-worst edge.
    let lines: Vec<&str> = t1.lines().collect();
    assert!(lines.len() >= 2, "windows + summary expected: {t1}");
    for line in &lines {
        let v = clock_sync::forensics::parse_json(line).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("gcs-skewfield/v1")
        );
    }
    let last = clock_sync::forensics::parse_json(lines.last().unwrap()).unwrap();
    assert_eq!(last.get("kind").and_then(|s| s.as_str()), Some("summary"));
    assert!(last.get("worst").and_then(|v| v.as_f64()).unwrap() > 0.0);

    // `gcs top` renders the stream.
    let field = tmp("field-render.jsonl");
    std::fs::write(&field, &t1).unwrap();
    let top = gcs(&["top", field.to_str().unwrap()]);
    assert!(top.status.success());
    let out = stdout(&top);
    assert!(out.contains("skew-field:"), "{out}");
    assert!(out.contains("max_edge"), "{out}");
    let _ = std::fs::remove_file(&field);
}
