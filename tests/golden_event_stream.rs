//! Golden-fixture pin of the engine's event stream.
//!
//! `tests/fixtures/f2_wavefront_events.jsonl` is the committed `--events`
//! log of one F2 wavefront run (`gcs run --topology path:8 --delays
//! wavefront --rates gradient --eps 0.05 --t 0.5 --horizon 40`). This test
//! re-runs the identical configuration in-process and asserts the produced
//! stream is **byte-identical** to the fixture.
//!
//! The point is to freeze the engine's determinism contract across hot-path
//! refactors: event ordering is tie-broken by queue insertion sequence, so
//! any change to how `HwDue` entries are stored, requeued after a rate
//! change, or validated on pop shows up here as a byte diff — it cannot
//! slip through silently.

use gcs_analysis::JsonlWriter;
use gcs_core::{AOpt, Params};
use gcs_sim::Engine;
use gcs_sweep::{build_delay, build_rates, parse_topology};
use gcs_time::DriftBounds;

const FIXTURE: &str = include_str!("fixtures/f2_wavefront_events.jsonl");

#[test]
fn wavefront_event_stream_is_byte_identical_to_fixture() {
    // Mirrors `gcs run`'s construction for the fixture's flag set.
    let (eps, t, seed) = (0.05, 0.5, 42);
    let graph = parse_topology("path:8", seed).expect("valid topology");
    let n = graph.len();
    let drift = DriftBounds::new(eps).expect("valid drift");
    let params = Params::recommended(eps, t).expect("valid params");
    let (delay, min_horizon) = build_delay("wavefront", &graph, t, eps, seed).expect("valid delay");
    let horizon = 40.0_f64.max(min_horizon);
    let schedules = build_rates("gradient", &graph, drift, horizon, seed).expect("valid rates");

    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(JsonlWriter::new(Vec::<u8>::new()))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(horizon);
    let bytes = engine.into_sink().finish().expect("Vec sink cannot fail");

    let produced = String::from_utf8(bytes).expect("stream is UTF-8");
    assert!(
        produced == FIXTURE,
        "event stream diverged from the golden fixture\n{}",
        match gcs_analysis::diff_streams(FIXTURE, &produced) {
            Some(diff) => format!("{diff:?}"),
            None => "streams differ only in trailing bytes".to_string(),
        }
    );
}
