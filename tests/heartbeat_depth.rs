//! Pins the heartbeat `queue_depth` semantics: the depth handed to
//! observers is the *total* event count across every region of the
//! calendar queue (near heap, ring buckets, overflow heap), not just the
//! sift-able near region.
//!
//! The lever is the delay model's floor promise: a strictly positive
//! `min_delay` engages the timing wheel, while hiding the promise runs
//! the identical simulation on a plain heap. Event order is contractually
//! the same either way, so the heartbeat streams — `queue_depth`
//! included — must be byte-identical. If calendar mode ever reported only
//! the near heap, this diverges immediately.

use clock_sync::core::{AOpt, Params};
use clock_sync::graph::topology;
use clock_sync::sim::{
    rates, ConstantDelay, DelayCtx, DelayModel, Delivery, Engine, EngineEvent, EventSink,
};
use clock_sync::telemetry::{parse_stream, BeatInput, HeartbeatEmitter, Record, WatchdogStatus};
use clock_sync::time::DriftBounds;

/// Delegates delays verbatim but withholds the floor promise, so the
/// engine falls back to the plain 4-ary heap while every delivery time
/// stays bit-for-bit the same.
#[derive(Clone)]
struct HideFloor<M>(M);

impl<M: DelayModel> DelayModel for HideFloor<M> {
    fn delivery(&mut self, ctx: &DelayCtx<'_>) -> Delivery {
        self.0.delivery(ctx)
    }

    fn uncertainty(&self) -> Option<f64> {
        self.0.uncertainty()
    }

    // `min_delay` stays at the default `None`: same delays, no lookahead
    // promise, plain-heap queue.
}

/// Sink that streams deterministic heartbeats from engine snapshots and
/// remembers the raw `(t, queue_depth)` samples.
struct DepthProbe {
    events: u64,
    hb: HeartbeatEmitter<Vec<u8>>,
    samples: Vec<(f64, usize)>,
}

impl DepthProbe {
    fn new(every: f64) -> Self {
        DepthProbe {
            events: 0,
            hb: HeartbeatEmitter::new(Vec::new(), every, 0.0, true),
            samples: Vec::new(),
        }
    }
}

impl EventSink for DepthProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, _event: &EngineEvent) {
        self.events += 1;
    }

    fn wants_snapshots(&self) -> bool {
        true
    }

    fn snapshot(&mut self, t: f64, _clocks: &[f64], queue_depth: usize) {
        self.samples.push((t, queue_depth));
        if self.hb.due(t) {
            self.hb
                .beat(&BeatInput {
                    t,
                    events: self.events,
                    queue_depth: queue_depth as u64,
                    timers_armed: 0,
                    dropped_model: 0,
                    dropped_faults: 0,
                    skew_global: None,
                    skew_local: None,
                    watchdog: WatchdogStatus::Off,
                })
                .expect("in-memory heartbeat write");
        }
    }
}

/// Runs A^opt on a path under a constant delay, heartbeating every 5 time
/// units; `hide_floor` switches the queue between calendar and plain-heap
/// mode without touching a single delivery time.
fn run_probe(hide_floor: bool) -> (String, Vec<(f64, usize)>) {
    let n = 6;
    let delay = 0.05;
    let horizon = 60.0;
    let params = Params::recommended(0.01, delay).unwrap();
    let g = topology::path(n);
    let drift = DriftBounds::new(0.01).unwrap();
    let schedules = rates::random_walk(n, drift, 3.0, horizon, 42);
    // The builder is generic over the delay model, so each mode builds
    // its own engine; everything else is identical.
    let probe = if hide_floor {
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); n])
            .rate_schedules(schedules)
            .delay_model(HideFloor(ConstantDelay::new(delay)))
            .event_sink(DepthProbe::new(5.0))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(horizon);
        engine.into_sink()
    } else {
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); n])
            .rate_schedules(schedules)
            .delay_model(ConstantDelay::new(delay))
            .event_sink(DepthProbe::new(5.0))
            .build();
        engine.wake_all_at(0.0);
        engine.run_until(horizon);
        engine.into_sink()
    };
    (
        String::from_utf8(probe.hb.into_inner()).unwrap(),
        probe.samples,
    )
}

/// Calendar-mode heartbeats are byte-identical to plain-heap heartbeats:
/// `queue_depth` counts near + ring + overflow, not whatever happens to
/// be sifted into the near heap.
#[test]
fn const_delay_calendar_heartbeats_match_plain_heap() {
    let (calendar_hb, calendar_samples) = run_probe(false);
    let (plain_hb, plain_samples) = run_probe(true);

    assert!(!calendar_hb.is_empty(), "run must produce heartbeats");
    assert_eq!(
        calendar_hb, plain_hb,
        "calendar-mode heartbeat stream must be byte-identical to plain heap"
    );
    assert_eq!(calendar_samples, plain_samples, "raw snapshot depths too");

    // The comparison is not vacuous: the run actually queues events, and
    // the beats carry non-zero depths.
    assert!(calendar_samples.iter().any(|&(_, d)| d > 0));
    let (records, skipped) = parse_stream(&calendar_hb);
    assert_eq!(skipped, 0, "every line parses as gcs-heartbeat/v1");
    let depths: Vec<u64> = records
        .iter()
        .filter_map(|r| match r {
            Record::Run(beat) => Some(beat.queue_depth),
            _ => None,
        })
        .collect();
    assert!(depths.len() >= 5, "expected several beats, got {depths:?}");
    assert!(
        depths.iter().any(|&d| d > 0),
        "beats never saw a queued event: {depths:?}"
    );
}
