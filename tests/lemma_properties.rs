//! Direct empirical checks of the paper's inner lemmas — the load-bearing
//! steps inside the proofs of Theorems 5.5 and 5.10.

use clock_sync::core::{AOpt, Params};
use clock_sync::graph::{topology, NodeId};
use clock_sync::sim::{rates, Engine, UniformDelay};
use clock_sync::time::DriftBounds;

const EPS: f64 = 0.02;
const T_MAX: f64 = 0.25;

/// Linear interpolation of a recorded, piecewise-linear clock trajectory.
fn value_at(history: &[(f64, f64)], t: f64) -> Option<f64> {
    if history.is_empty() || t < history[0].0 {
        return None;
    }
    match history.binary_search_by(|&(ht, _)| ht.partial_cmp(&t).unwrap()) {
        Ok(i) => Some(history[i].1),
        Err(0) => None,
        Err(i) if i == history.len() => Some(history[i - 1].1),
        Err(i) => {
            let (t0, l0) = history[i - 1];
            let (t1, l1) = history[i];
            Some(l0 + (l1 - l0) * (t - t0) / (t1 - t0))
        }
    }
}

#[test]
fn lemma_5_4_estimate_accuracy() {
    // Lemma 5.4: once v has heard from w, L_v^w(t) > L_w(t − 𝒯) − H̄₀.
    // Clocks are piecewise linear between events, so recording them at every
    // event and interpolating reconstructs L_w(t − 𝒯) exactly.
    let params = Params::recommended(EPS, T_MAX).unwrap();
    let n = 6;
    let g = topology::path(n);
    let drift = DriftBounds::new(EPS).unwrap();
    let schedules = rates::random_walk(n, drift, 4.0, 120.0, 11);
    let mut engine = Engine::builder(g.clone())
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(T_MAX, 5))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    let mut histories: Vec<Vec<(f64, f64)>> = vec![Vec::new(); n];
    let h0_bar = params.h0_bar();
    let mut checks = 0u64;
    engine.run_until_observed(120.0, |e| {
        let t = e.now();
        for (v, history) in histories.iter_mut().enumerate() {
            history.push((t, e.logical_value(NodeId(v))));
        }
        for v in 0..n {
            let hw = e.hardware_value(NodeId(v));
            let node = e.protocol(NodeId(v));
            for &w in g.neighbors(NodeId(v)) {
                if let Some(est) = node.neighbor_estimate(w, hw) {
                    if let Some(l_w_then) = value_at(&histories[w.index()], t - T_MAX) {
                        checks += 1;
                        assert!(
                            est > l_w_then - h0_bar - 1e-9,
                            "Lemma 5.4 violated at t = {t}: node {v}'s estimate of \
                             {w} is {est}, but L_w(t − 𝒯) − H̄₀ = {}",
                            l_w_then - h0_bar
                        );
                    }
                }
            }
        }
    });
    assert!(checks > 1_000, "only {checks} checks performed");
}

#[test]
fn corollary_5_2_lmax_dominates_and_grows_slowly() {
    // Corollary 5.2: (i) L_v ≤ L_v^max always; (ii) the system-wide maximum
    // estimate L^max grows at most at rate 1 + ε.
    let params = Params::recommended(EPS, T_MAX).unwrap();
    let n = 7;
    let g = topology::cycle(n);
    let drift = DriftBounds::new(EPS).unwrap();
    let schedules = rates::alternating(n, drift, 9.0, 150.0);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(T_MAX, 8))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    let mut last: Option<(f64, f64)> = None;
    engine.run_until_observed(150.0, |e| {
        let t = e.now();
        let mut lmax_global = f64::MIN;
        for v in 0..n {
            let hw = e.hardware_value(NodeId(v));
            let node = e.protocol(NodeId(v));
            let lmax = node.lmax_value(hw);
            // (i)
            assert!(
                e.logical_value(NodeId(v)) <= lmax + 1e-9,
                "Corollary 5.2(i) violated at node {v}, t = {t}"
            );
            lmax_global = lmax_global.max(lmax);
        }
        // (ii)
        if let Some((t0, m0)) = last {
            let dt = t - t0;
            assert!(
                lmax_global - m0 <= (1.0 + EPS) * dt + 1e-9,
                "Corollary 5.2(ii) violated: L^max grew {} in {dt}",
                lmax_global - m0
            );
        }
        last = Some((t, lmax_global));
    });
}

#[test]
fn lemma_5_1_rate_decisions_are_stable_between_messages() {
    // Lemma 5.1's observable consequence: the logical rate multiplier only
    // changes at message arrivals or at the precomputed H^R crossing — never
    // "drifts" in between. We verify that between any two consecutive
    // events at a node, the logical clock is exactly linear in the hardware
    // clock with slope 1 or 1 + μ.
    let params = Params::recommended(EPS, T_MAX).unwrap();
    let n = 5;
    let g = topology::path(n);
    let drift = DriftBounds::new(EPS).unwrap();
    let schedules = rates::split(n, drift, |v| v < n / 2);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(UniformDelay::new(T_MAX, 3))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    let mu = params.mu();
    let mut prev: Vec<Option<(f64, f64, f64)>> = vec![None; n]; // (hw, L, mult)
    engine.run_until_observed(100.0, |e| {
        for (v, slot) in prev.iter_mut().enumerate() {
            let hw = e.hardware_value(NodeId(v));
            let l = e.logical_value(NodeId(v));
            let mult = e.protocol(NodeId(v)).multiplier();
            assert!(
                (mult - 1.0).abs() < 1e-12 || (mult - (1.0 + mu)).abs() < 1e-12,
                "multiplier {mult} is neither 1 nor 1 + μ"
            );
            if let Some((hw0, l0, mult0)) = *slot {
                let dh = hw - hw0;
                let dl = l - l0;
                // The increment must be achievable by a (possibly mid-span
                // switched) mix of the two slopes.
                assert!(
                    dl >= dh - 1e-9 && dl <= (1.0 + mu) * dh + 1e-9,
                    "node {v}: ΔL = {dl} for ΔH = {dh} (mult was {mult0})"
                );
            }
            *slot = Some((hw, l, mult));
        }
    });
}
