//! Integration tests: the paper's lower-bound constructions force the
//! predicted skews on real algorithm implementations.

use clock_sync::adversary::framed::LocalLowerBound;
use clock_sync::adversary::shift::{GlobalLowerBound, ShiftExecution};
use clock_sync::adversary::slowdown::slow_node_demo;
use clock_sync::core::{AOpt, AOptJump, MaxAlgorithm, NoSync, Params};
use clock_sync::graph::{topology, NodeId};

#[test]
fn theorem_7_2_floor_scales_linearly_with_d() {
    let (eps, t, t_hat) = (0.05, 0.5, 1.0);
    let params = Params::recommended(eps, t_hat).unwrap();
    let mut forced = Vec::new();
    for d in [2usize, 4, 8] {
        let lb = GlobalLowerBound::new(topology::path(d + 1), eps, eps, t, t_hat, 0.01);
        let report = lb.run(vec![AOpt::new(params); d + 1], ShiftExecution::E3);
        assert!(report.endpoint_skew >= 0.9 * lb.predicted_skew());
        forced.push(report.endpoint_skew);
    }
    // Doubling D roughly doubles the forced skew.
    assert!(forced[1] / forced[0] > 1.7);
    assert!(forced[2] / forced[1] > 1.7);
}

#[test]
fn theorem_7_2_holds_on_non_path_graphs() {
    let (eps, t, t_hat) = (0.05, 0.5, 1.0);
    let params = Params::recommended(eps, t_hat).unwrap();
    let g = topology::grid(3, 3); // diameter 4
    let lb = GlobalLowerBound::new(g, eps, eps, t, t_hat, 0.01);
    let report = lb.run(vec![AOpt::new(params); 9], ShiftExecution::E3);
    assert!(
        report.endpoint_skew >= 0.85 * lb.predicted_skew(),
        "forced {} of {}",
        report.endpoint_skew,
        lb.predicted_skew()
    );
}

#[test]
fn upper_and_lower_global_bounds_bracket_a_opt() {
    // Tightness: the forced floor and A^opt's guarantee 𝒢 differ by a
    // factor ≤ (1+ε̂)/(1+ϱ) + H₀-term — a small constant.
    let (eps, t_hat) = (0.05, 0.5);
    let d = 8;
    let params = Params::recommended(eps, t_hat).unwrap();
    let lb = GlobalLowerBound::new(topology::path(d + 1), eps, eps, t_hat, t_hat, 0.01);
    let report = lb.run(vec![AOpt::new(params); d + 1], ShiftExecution::E3);
    let upper = params.global_skew_bound(d as u32);
    assert!(report.endpoint_skew <= upper + 1e-9);
    assert!(
        upper / report.endpoint_skew < 2.0,
        "bracket too loose: floor {}, ceiling {upper}",
        report.endpoint_skew
    );
}

#[test]
fn indistinguishability_verified_for_multiple_algorithms() {
    let (eps, t, t_hat) = (0.05, 0.5, 1.0);
    let lb = GlobalLowerBound::new(topology::path(4), eps, eps, t, t_hat, 0.01);
    let params = Params::recommended(eps, t_hat).unwrap();
    let (_, ok) = lb.verify_indistinguishable(|| vec![AOpt::new(params); 4]);
    assert!(ok, "A^opt distinguishable");
    let (_, ok) = lb.verify_indistinguishable(|| vec![MaxAlgorithm::new(1.0); 4]);
    assert!(ok, "MaxAlgorithm distinguishable");
    let (_, ok) = lb.verify_indistinguishable(|| vec![NoSync; 4]);
    assert!(ok, "NoSync distinguishable");
}

#[test]
fn theorem_7_7_meets_stage_targets_against_nosync() {
    let eps = 0.2;
    let alpha = 1.0 - eps;
    let b = LocalLowerBound::required_branching(alpha, 1.0 + eps, eps);
    let lb = LocalLowerBound::new(b, 2, eps, 1.0, alpha);
    let reports = lb.run(|n| vec![NoSync; n]);
    for r in &reports {
        assert!(
            r.skew >= r.target - 1e-9,
            "stage {}: {} < {}",
            r.stage,
            r.skew,
            r.target
        );
    }
    assert_eq!(reports.last().unwrap().distance, 1);
}

#[test]
fn theorem_7_7_final_skew_grows_with_stages() {
    let eps = 0.2;
    let alpha = 1.0 - eps;
    let final_skews: Vec<f64> = [1usize, 2]
        .iter()
        .map(|&s| {
            let lb = LocalLowerBound::new(5, s, eps, 1.0, alpha);
            lb.run(|n| vec![NoSync; n]).last().unwrap().skew
        })
        .collect();
    assert!(
        final_skews[1] > final_skews[0],
        "more stages must force more neighbour skew: {final_skews:?}"
    );
}

#[test]
fn theorem_7_12_jump_algorithms_are_also_forced() {
    // Even with β = ∞ (instant jumps), the construction forces local skew —
    // the message of Theorem 7.12.
    let eps = 0.1;
    let t_max = 1.0;
    let params = Params::recommended(eps, t_max).unwrap();
    let lb = LocalLowerBound::new(3, 2, eps, t_max, 1.0 - eps);
    let reports = lb.run(|n| vec![AOptJump::new(params); n]);
    let last = reports.last().unwrap();
    assert_eq!(last.distance, 1);
    assert!(
        last.skew > 0.2 * t_max,
        "jump variant escaped with only {}",
        last.skew
    );
}

#[test]
fn a_opt_bounds_hold_even_while_under_attack() {
    let eps = 0.1;
    let t_max = 1.0;
    let params = Params::recommended(eps, t_max).unwrap();
    let lb = LocalLowerBound::new(3, 2, eps, t_max, 1.0 - eps);
    let reports = lb.run(|n| vec![AOpt::new(params); n]);
    let d = lb.d_prime() as u32;
    for r in &reports {
        assert!(
            r.skew <= params.local_skew_bound(d) * r.distance as f64 + 1e-9,
            "stage {} skew {} beyond per-distance ceiling",
            r.stage,
            r.skew
        );
    }
}

#[test]
fn lemma_7_10_shifts_one_node_only() {
    let eps = 0.1;
    let params = Params::recommended(eps, 1.0).unwrap();
    let report = slow_node_demo(
        topology::cycle(5),
        || vec![AOpt::new(params); 5],
        vec![1.0, 1.05, 1.1, 1.0, 1.02],
        eps,
        0.3,
        1.0,
        0.5,
        NodeId(3),
        50.0,
    );
    assert!((report.modified_at_t - report.base_at_shifted_time).abs() < 1e-6);
    assert!(report.max_other_deviation < 1e-6);
}
