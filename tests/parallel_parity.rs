//! Thread-count parity for the lookahead-windowed parallel engine.
//!
//! `Engine::run_until_threaded` promises an observable execution
//! **byte-identical** to the sequential loop at any thread count. These
//! tests pin that promise three ways:
//!
//! * against the committed golden fixture
//!   (`tests/fixtures/f2_wavefront_events.jsonl`) at 1/2/4 threads — the F2
//!   wavefront's lookahead expires at the flip, so this also exercises the
//!   mid-run merge-back to the sequential loop;
//! * by cross-comparing thread counts on a torus under wavefront and
//!   constant delays (the latter never falls back: pure parallel execution
//!   through the final window);
//! * for the one documented fallback — a model with no lookahead (uniform
//!   random delays) runs sequentially — and for snapshot-hungry sinks
//!   (`SkewObserver`, `InvariantWatchdog`, `MetricsSink`, `ClockTrace`),
//!   which the parallel driver serves through exact barrier-time snapshot
//!   replay: their results must be identical to the sequential run's, at
//!   any thread count.

use gcs_analysis::{
    diff_streams, ClockTrace, InvariantWatchdog, JsonlWriter, MetricsSink, SkewObserver,
};
use gcs_core::{AOpt, Params};
use gcs_sim::{Engine, EventSink, MessageStats};
use gcs_sweep::{build_delay, build_rates, parse_topology};
use gcs_time::DriftBounds;

const FIXTURE: &str = include_str!("fixtures/f2_wavefront_events.jsonl");

const EPS: f64 = 0.05;
const T_MAX: f64 = 0.5;
const SEED: u64 = 42;

/// Runs the standard F2-style configuration with the given sink and thread
/// count; mirrors `gcs run`'s construction (and the golden fixture's).
fn run_with<S: EventSink>(
    topo: &str,
    delays: &str,
    threads: usize,
    sink: S,
) -> Engine<AOpt, gcs_sweep::SweepDelay, S> {
    let graph = parse_topology(topo, SEED).expect("valid topology");
    let n = graph.len();
    let drift = DriftBounds::new(EPS).expect("valid drift");
    let params = Params::recommended(EPS, T_MAX).expect("valid params");
    let (delay, min_horizon) = build_delay(delays, &graph, T_MAX, EPS, SEED).expect("valid delay");
    let horizon = 40.0_f64.max(min_horizon);
    let schedules = build_rates("gradient", &graph, drift, horizon, SEED).expect("valid rates");
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(sink)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_threaded(horizon, threads);
    engine
}

/// Event stream, final logical clocks, and message stats for one run.
fn observe(topo: &str, delays: &str, threads: usize) -> (String, Vec<f64>, MessageStats) {
    let engine = run_with(topo, delays, threads, JsonlWriter::new(Vec::<u8>::new()));
    let values = engine.logical_values();
    let stats = engine.message_stats().clone();
    let bytes = engine.into_sink().finish().expect("Vec sink cannot fail");
    (
        String::from_utf8(bytes).expect("stream is UTF-8"),
        values,
        stats,
    )
}

fn assert_streams_equal(reference: &str, produced: &str, what: &str) {
    assert!(
        produced == reference,
        "{what}: event stream diverged\n{}",
        match diff_streams(reference, produced) {
            Some(diff) => format!("{diff:?}"),
            None => "streams differ only in trailing bytes".to_string(),
        }
    );
}

#[test]
fn golden_fixture_is_byte_identical_at_1_2_4_threads() {
    // The wavefront's lookahead holds until the flip (t = 35) and the run
    // continues to t = 55, so threads > 1 exercise parallel windows *and*
    // the merge-back to sequential execution — against the same fixture the
    // sequential engine is pinned to.
    for threads in [1, 2, 4] {
        let (stream, _, _) = observe("path:8", "wavefront", threads);
        assert_streams_equal(FIXTURE, &stream, &format!("--threads {threads}"));
    }
}

#[test]
fn torus_wavefront_parity_across_thread_counts() {
    let (base_stream, base_values, base_stats) = observe("torus:6x6", "wavefront", 1);
    assert!(
        !base_stream.is_empty(),
        "baseline produced no events; the test would be vacuous"
    );
    for threads in [2, 4] {
        let (stream, values, stats) = observe("torus:6x6", "wavefront", threads);
        assert_streams_equal(&base_stream, &stream, &format!("--threads {threads}"));
        assert_eq!(values, base_values, "--threads {threads}: logical clocks");
        assert_eq!(stats, base_stats, "--threads {threads}: message stats");
    }
}

#[test]
fn torus_constant_delay_parity_across_thread_counts() {
    // Constant delays promise a lookahead forever: these runs never fall
    // back, covering the final inclusive-to-horizon window in parallel.
    let (base_stream, base_values, base_stats) = observe("torus:6x6", "const", 1);
    assert!(!base_stream.is_empty());
    for threads in [2, 4] {
        let (stream, values, stats) = observe("torus:6x6", "const", threads);
        assert_streams_equal(&base_stream, &stream, &format!("--threads {threads}"));
        assert_eq!(values, base_values, "--threads {threads}: logical clocks");
        assert_eq!(stats, base_stats, "--threads {threads}: message stats");
    }
}

#[test]
fn model_without_lookahead_falls_back_gracefully() {
    // Uniform random delays advertise no lookahead (`min_delay` → `None`):
    // requesting threads must transparently run the sequential loop, not
    // crash or diverge.
    let (base_stream, base_values, _) = observe("path:8", "uniform", 1);
    let (stream, values, _) = observe("path:8", "uniform", 4);
    assert_streams_equal(&base_stream, &stream, "uniform fallback");
    assert_eq!(values, base_values);
}

#[test]
fn skew_observer_results_are_identical_at_any_thread_count() {
    // `SkewObserver` wants per-event snapshots; the parallel driver
    // reconstructs them at the window barrier, so the observable contract
    // is exact: same results, any `threads`.
    let base = run_with("torus:6x6", "wavefront", 1, {
        let g = parse_topology("torus:6x6", SEED).unwrap();
        SkewObserver::new(&g)
    });
    let base_obs = base.sink();
    for threads in [2, 4] {
        let run = run_with("torus:6x6", "wavefront", threads, {
            let g = parse_topology("torus:6x6", SEED).unwrap();
            SkewObserver::new(&g)
        });
        let obs = run.sink();
        assert_eq!(obs.worst_global(), base_obs.worst_global());
        assert_eq!(obs.worst_local(), base_obs.worst_local());
        assert_eq!(obs.worst_global_at(), base_obs.worst_global_at());
        assert_eq!(obs.worst_local_at(), base_obs.worst_local_at());
    }
    assert!(base_obs.worst_global() > 0.0, "observer saw a real run");
}

#[test]
fn watchdog_results_are_identical_at_any_thread_count() {
    let make = || {
        let g = parse_topology("torus:6x6", SEED).unwrap();
        let params = Params::recommended(EPS, T_MAX).unwrap();
        let drift = DriftBounds::new(EPS).unwrap();
        InvariantWatchdog::new(&g, params, drift)
    };
    let base = run_with("torus:6x6", "wavefront", 1, make());
    for threads in [2, 4] {
        let run = run_with("torus:6x6", "wavefront", threads, make());
        assert_eq!(run.sink().tripped(), base.sink().tripped());
        assert_eq!(run.sink().snapshots(), base.sink().snapshots());
    }
    assert!(!base.sink().tripped(), "A^opt must satisfy its invariants");
    assert!(base.sink().snapshots() > 0);
}

#[test]
fn metrics_registry_is_byte_identical_at_any_thread_count() {
    // The metrics sink consumes both the event stream and per-event
    // snapshots (clock gauges, queue-depth histograms); its rendered
    // snapshot and its `gcs-metrics/v1` JSON must both be byte-identical
    // to the sequential run's.
    let run = |threads| {
        let engine = run_with("torus:6x6", "wavefront", threads, MetricsSink::new());
        let mut sink = engine.into_sink();
        sink.flush_rate_window(60.0);
        (sink.render(), sink.registry().to_json())
    };
    let (base_render, base_json) = run(1);
    assert!(base_json.contains("\"schema\":\"gcs-metrics/v1\""));
    for threads in [2, 4] {
        let (render, json) = run(threads);
        assert_eq!(render, base_render, "--threads {threads}: metrics render");
        assert_eq!(json, base_json, "--threads {threads}: metrics JSON");
    }
}

#[test]
fn clock_trace_is_byte_identical_at_any_thread_count() {
    let make = || {
        let g = parse_topology("torus:6x6", SEED).unwrap();
        ClockTrace::new(g.len(), 0.1)
    };
    let base = run_with("torus:6x6", "const", 1, make())
        .into_sink()
        .to_csv();
    assert!(base.lines().count() > 10, "trace sampled a real run");
    for threads in [2, 4] {
        let csv = run_with("torus:6x6", "const", threads, make())
            .into_sink()
            .to_csv();
        assert_eq!(csv, base, "--threads {threads}: clock trace CSV");
    }
}
