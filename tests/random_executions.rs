//! Property-based integration tests: randomized executions never violate
//! the paper's guarantees.

use clock_sync::analysis::{LegalStateChecker, SkewObserver};
use clock_sync::core::{AOpt, Params};
use clock_sync::graph::topology;
use clock_sync::sim::{rates, Engine, UniformDelay};
use clock_sync::time::{DriftBounds, EnvelopeChecker};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn a_opt_bounds_hold_on_random_environments(
        n in 3usize..10,
        p_edge in 0.1f64..0.5,
        graph_seed in 0u64..500,
        delay_seed in 0u64..500,
        rate_seed in 0u64..500,
        eps in 0.005f64..0.05,
        t_max in 0.05f64..0.5,
    ) {
        let params = Params::recommended(eps, t_max).unwrap();
        let g = topology::erdos_renyi(n, p_edge, graph_seed);
        let diameter = g.diameter();
        let drift = DriftBounds::new(eps).unwrap();
        let horizon = 60.0;
        let schedules = rates::random_walk(n, drift, 3.0, horizon, rate_seed);
        let mut observer = SkewObserver::new(&g);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); n])
            .delay_model(UniformDelay::new(t_max, delay_seed))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(horizon, |e| observer.observe(e));
        prop_assert!(observer.worst_global() <= params.global_skew_bound(diameter) + 1e-9);
        prop_assert!(observer.worst_local() <= params.local_skew_bound(diameter) + 1e-9);
    }

    #[test]
    fn a_opt_envelope_holds_on_random_environments(
        n in 2usize..8,
        rate_seed in 0u64..300,
        delay_seed in 0u64..300,
        eps in 0.005f64..0.08,
    ) {
        let t_max = 0.2;
        let params = Params::recommended(eps, t_max).unwrap();
        let g = topology::path(n);
        let drift = DriftBounds::new(eps).unwrap();
        let schedules = rates::random_walk(n, drift, 2.0, 40.0, rate_seed);
        let mut checkers = vec![EnvelopeChecker::new(drift, 0.0, 1e-9); n];
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); n])
            .delay_model(UniformDelay::new(t_max, delay_seed))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut ok = true;
        engine.run_until_observed(40.0, |e| {
            for (v, checker) in checkers.iter_mut().enumerate() {
                ok &= checker.observe(e.now(), e.logical_value(clock_sync::graph::NodeId(v)));
            }
        });
        prop_assert!(ok, "Condition (1) violated");
    }

    #[test]
    fn a_opt_legal_state_holds_on_random_environments(
        n in 3usize..8,
        rate_seed in 0u64..200,
        delay_seed in 0u64..200,
    ) {
        let (eps, t_max) = (0.02, 0.2);
        let params = Params::recommended(eps, t_max).unwrap();
        let g = topology::cycle(n.max(3));
        let drift = DriftBounds::new(eps).unwrap();
        let schedules = rates::random_walk(g.len(), drift, 4.0, 50.0, rate_seed);
        let mut checker = LegalStateChecker::new(&g, params);
        let mut engine = Engine::builder(g.clone())
            .protocols(vec![AOpt::new(params); g.len()])
            .delay_model(UniformDelay::new(t_max, delay_seed))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        let mut ok = true;
        engine.run_until_observed(50.0, |e| { ok &= checker.observe(e); });
        prop_assert!(ok, "legal state violated: {:?}", checker.first_violation());
    }
}
