//! Determinism property tests for the sweep orchestrator.
//!
//! `gcs sweep` promises that a fixed [`SweepSpec`] produces *byte-identical*
//! aggregated CSV/JSONL output at every `--jobs` value: jobs are pure
//! functions of their spec, and the pool emits results in job-index order
//! regardless of completion order. These tests pin that promise down in the
//! style of `tests/event_stream.rs`, reusing `diff_streams` so a divergence
//! reports the exact line.

use clock_sync::analysis::diff_streams;
use clock_sync::sweep::{report, run_sweep, SweepSpec};
use proptest::prelude::*;

/// Runs a sweep at the given worker count and returns its full output
/// stream: CSV header + per-job CSV rows + per-job JSONL rows + the final
/// JSONL summary, exactly as the `gcs sweep --csv/--jsonl` files would be
/// laid out end to end.
fn sweep_output(spec: &SweepSpec, workers: usize) -> String {
    let jobs = spec.expand();
    let mut out = String::from(report::CSV_HEADER);
    out.push('\n');
    let (_, aggregate) = run_sweep(&jobs, workers, |job, outcome| {
        out.push_str(&report::csv_row(job, outcome));
        out.push('\n');
        out.push_str(&report::jsonl_row(job, outcome));
        out.push('\n');
    });
    out.push_str(&report::jsonl_summary(&aggregate));
    out.push('\n');
    out
}

/// The fixed F-style grid: serial and 8-worker runs must agree byte for
/// byte, including the order-sensitive aggregate means.
#[test]
fn fixed_grid_output_identical_at_1_and_8_workers() {
    let spec = SweepSpec {
        topologies: vec!["path:5".into(), "ring:6".into(), "er:8:0.4".into()],
        eps: vec![0.01, 0.02],
        seeds: 0..2,
        horizon: 15.0,
        watchdog: true,
        ..SweepSpec::default()
    };
    assert_eq!(spec.len(), 12);
    let serial = sweep_output(&spec, 1);
    let parallel = sweep_output(&spec, 8);
    assert!(serial.contains(r#""status":"completed""#));
    assert_eq!(diff_streams(&serial, &parallel), None);
}

/// Different seed ranges must diverge — the identity above is not vacuous.
#[test]
fn different_seed_ranges_diverge() {
    let mut spec = SweepSpec {
        topologies: vec!["path:5".into()],
        horizon: 15.0,
        seeds: 0..2,
        ..SweepSpec::default()
    };
    let a = sweep_output(&spec, 2);
    spec.seeds = 2..4;
    let b = sweep_output(&spec, 2);
    assert!(diff_streams(&a, &b).is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Worker count never leaks into the output, across random grids over
    /// random topologies. This is the contract the `sweep_scaling` bench
    /// and the CI smoke sweep rely on.
    #[test]
    fn sweep_output_independent_of_worker_count(
        n in 3usize..7,
        p_edge in 2u32..7,
        seed_count in 1u64..4,
        workers in 2usize..9,
    ) {
        // Format the edge probability from an integer so the topology
        // spec string itself is reproducible.
        let spec = SweepSpec {
            topologies: vec![format!("path:{n}"), format!("er:{n}:0.{p_edge}")],
            eps: vec![0.01],
            seeds: 0..seed_count,
            horizon: 10.0,
            ..SweepSpec::default()
        };
        let serial = sweep_output(&spec, 1);
        let parallel = sweep_output(&spec, workers);
        prop_assert!(serial.contains(r#""kind":"summary""#));
        prop_assert_eq!(diff_streams(&serial, &parallel), None);
    }
}
