//! Integration tests: the paper's upper-bound theorems hold across
//! topologies and adversarial environments.

use clock_sync::analysis::{GradientProfile, LegalStateChecker, SkewObserver};
use clock_sync::core::{AOpt, Params};
use clock_sync::graph::{topology, Graph, NodeId};
use clock_sync::sim::{rates, ConstantDelay, DirectionalDelay, Engine, UniformDelay};
use clock_sync::time::{DriftBounds, EnvelopeChecker, ProgressChecker, RateEnvelope};

const EPS: f64 = 0.02;
const T_MAX: f64 = 0.25;

fn params() -> Params {
    Params::recommended(EPS, T_MAX).unwrap()
}

fn drift() -> DriftBounds {
    DriftBounds::new(EPS).unwrap()
}

/// Runs A^opt on `graph` under the given schedules/delays and returns the
/// worst observed (global, local) skews, asserting the theorem bounds.
fn run_and_check(
    graph: Graph,
    schedules: Vec<clock_sync::time::RateSchedule>,
    horizon: f64,
    seed: u64,
) -> (f64, f64) {
    let p = params();
    let n = graph.len();
    let diameter = graph.diameter();
    let mut observer = SkewObserver::new(&graph);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(p); n])
        .delay_model(UniformDelay::new(T_MAX, seed))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(horizon, |e| observer.observe(e));
    let g_bound = p.global_skew_bound(diameter);
    let l_bound = p.local_skew_bound(diameter);
    assert!(
        observer.worst_global() <= g_bound + 1e-9,
        "Thm 5.5 violated: {} > {g_bound}",
        observer.worst_global()
    );
    assert!(
        observer.worst_local() <= l_bound + 1e-9,
        "Thm 5.10 violated: {} > {l_bound}",
        observer.worst_local()
    );
    (observer.worst_global(), observer.worst_local())
}

#[test]
fn bounds_hold_on_paths_with_split_drift() {
    let n = 12;
    let g = topology::path(n);
    let schedules = rates::split(n, drift(), |v| v < n / 2);
    let (global, local) = run_and_check(g, schedules, 150.0, 1);
    assert!(global > 0.0 && local > 0.0);
}

#[test]
fn bounds_hold_on_cycles_with_alternating_drift() {
    let n = 10;
    let g = topology::cycle(n);
    let schedules = rates::alternating(n, drift(), 9.0, 150.0);
    run_and_check(g, schedules, 150.0, 2);
}

#[test]
fn bounds_hold_on_grids_with_random_walk_drift() {
    let g = topology::grid(4, 3);
    let schedules = rates::random_walk(12, drift(), 4.0, 120.0, 11);
    run_and_check(g, schedules, 120.0, 3);
}

#[test]
fn bounds_hold_on_trees_and_stars() {
    let g = topology::binary_tree(15);
    let schedules = rates::split(15, drift(), |v| v % 3 == 0);
    run_and_check(g, schedules, 100.0, 4);

    let g = topology::star(9);
    let schedules = rates::split(9, drift(), |v| v == 0);
    run_and_check(g, schedules, 100.0, 5);
}

#[test]
fn bounds_hold_on_random_graphs() {
    for seed in 0..3 {
        let g = topology::erdos_renyi(14, 0.2, seed);
        let schedules = rates::random_walk(14, drift(), 6.0, 100.0, seed);
        run_and_check(g, schedules, 100.0, seed + 10);
    }
}

#[test]
fn bounds_hold_under_directional_worst_case_delays() {
    let p = params();
    let n = 10;
    let g = topology::path(n);
    let schedules = rates::split(n, drift(), |v| v < n / 2);
    // Slow every away-from-v₀ link: the maximum estimate (originating at
    // the fast half around v₀) reaches the tail a full D·𝒯 late.
    let delay = DirectionalDelay::new(&g, NodeId(0), 0.0, T_MAX);
    let mut observer = SkewObserver::new(&g);
    let mut engine = Engine::builder(g.clone())
        .protocols(vec![AOpt::new(p); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(200.0, |e| observer.observe(e));
    assert!(observer.worst_global() <= p.global_skew_bound((n - 1) as u32) + 1e-9);
    assert!(observer.worst_local() <= p.local_skew_bound((n - 1) as u32) + 1e-9);
    // This adversary actually builds real skew.
    assert!(observer.worst_global() > T_MAX / 2.0);
}

#[test]
fn staggered_initialization_respects_bounds() {
    // Only node 0 self-wakes; everyone else is initialized by the flood.
    let p = params();
    let n = 9;
    let g = topology::path(n);
    let schedules = rates::split(n, drift(), |v| v % 2 == 1);
    let mut observer = SkewObserver::new(&g);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(p); n])
        .delay_model(UniformDelay::new(T_MAX, 77))
        .rate_schedules(schedules)
        .build();
    engine.wake(NodeId(0), 0.0);
    engine.run_until_observed(150.0, |e| observer.observe(e));
    assert!(observer.worst_global() <= p.global_skew_bound((n - 1) as u32) + 1e-9);
}

#[test]
fn envelope_and_progress_conditions_hold_everywhere() {
    let p = params();
    let n = 8;
    let g = topology::cycle(n);
    let schedules = rates::random_walk(n, drift(), 3.0, 100.0, 21);
    let (alpha, beta) = p.rate_envelope();
    let env = RateEnvelope::new(alpha, beta);
    let mut envelope = vec![EnvelopeChecker::new(drift(), 0.0, 1e-9); n];
    let mut progress = vec![ProgressChecker::new(env, 1e-9); n];
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(p); n])
        .delay_model(UniformDelay::new(T_MAX, 33))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(100.0, |e| {
        for v in 0..n {
            let l = e.logical_value(NodeId(v));
            assert!(
                envelope[v].observe(e.now(), l),
                "Condition (1) violated at {v}"
            );
            assert!(
                progress[v].observe(e.now(), l),
                "Condition (2) violated at {v}"
            );
        }
    });
}

#[test]
fn legal_state_invariant_holds() {
    let p = params();
    let n = 10;
    let g = topology::path(n);
    let schedules = rates::split(n, drift(), |v| v < n / 2);
    let mut checker = LegalStateChecker::new(&g, p);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(p); n])
        .delay_model(UniformDelay::new(T_MAX, 55))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(200.0, |e| {
        assert!(
            checker.observe(e),
            "legal state violated: {:?}",
            checker.first_violation()
        );
    });
}

#[test]
fn gradient_profile_shape_is_sublinear() {
    // Corollary 7.9's shape: worst skew at distance d grows like
    // d·(1 + log(D/d)) — in particular the per-hop average at distance 1 is
    // at least the per-hop average at distance D.
    let p = params();
    let n = 12;
    let g = topology::path(n);
    let schedules = rates::alternating(n, drift(), 13.0, 250.0);
    let mut profile = GradientProfile::new(&g);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(p); n])
        .delay_model(UniformDelay::new(T_MAX, 13))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(250.0, |e| profile.observe(e));
    let avg = profile.average_by_distance();
    assert!(avg[1] >= avg[n - 1] - 1e-9);
    // Worst skew is monotone-ish in distance: distance D carries at least
    // as much total skew as distance 1.
    let worst = profile.worst_by_distance();
    assert!(worst[n - 1] >= worst[1] - 1e-9 || worst[1] <= p.local_skew_bound((n - 1) as u32));
}

#[test]
fn benign_constant_delay_network_is_very_tight() {
    // With zero drift and constant delays, skews collapse to ~κ scale.
    let p = params();
    let n = 8;
    let g = topology::path(n);
    let mut observer = SkewObserver::new(&g);
    let mut engine = Engine::builder(g)
        .protocols(vec![AOpt::new(p); n])
        .delay_model(ConstantDelay::new(T_MAX / 2.0))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(100.0, |e| observer.observe(e));
    assert!(observer.worst_global() <= 2.0 * p.kappa());
}
