//! Integration tests: the Section 8 variants and the baseline comparison.

use clock_sync::adversary::WavefrontDelay;
use clock_sync::analysis::SkewObserver;
use clock_sync::core::{
    rtt::RttProbe, AOpt, DiscreteAOpt, ExternalAOpt, MaxAlgorithm, MidpointAlgorithm, OffsetAOpt,
    Params,
};
use clock_sync::graph::{topology, NodeId};
use clock_sync::sim::{rates, ConstantDelay, DelayCtx, Delivery, Engine, FnDelay, UniformDelay};
use clock_sync::time::{DriftBounds, RateSchedule};
use rand::{Rng, SeedableRng};

#[test]
fn external_sync_accuracy_is_linear_in_distance() {
    // Section 8.5: worst lag of node v behind the reference is bounded
    // linearly in d(v, v₀).
    let eps = 5e-3;
    let t_max = 0.01;
    let params = Params::recommended(eps, t_max).unwrap();
    let n = 7;
    let g = topology::path(n);
    let drift = DriftBounds::new(eps).unwrap();
    let mut schedules = vec![RateSchedule::constant(1.0).unwrap()];
    schedules.extend(rates::random_walk(n - 1, drift, 5.0, 200.0, 3));
    let mut nodes = vec![ExternalAOpt::reference(params)];
    nodes.extend(vec![ExternalAOpt::new(params); n - 1]);
    let mut engine = Engine::builder(g)
        .protocols(nodes)
        .delay_model(UniformDelay::new(t_max, 8))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    let mut worst_lag = vec![0.0f64; n];
    engine.run_until_observed(200.0, |e| {
        for (v, lag) in worst_lag.iter_mut().enumerate() {
            let l = e.logical_value(NodeId(v));
            assert!(l <= e.now() + 1e-9, "node {v} overtook real time");
            *lag = lag.max(e.now() - l);
        }
    });
    // After the initial convergence, lag at distance d is O(d·𝒯 + ε·H₀
    // terms); check a generous linear envelope.
    for (v, &lag) in worst_lag.iter().enumerate().skip(1) {
        let allowance = (v as f64 + 2.0) * t_max + 3.0 * eps * 200.0f64.min(30.0) + 1.0;
        assert!(lag <= allowance, "node {v} lag {lag} > {allowance}");
    }
}

#[test]
fn offset_variant_matches_plain_a_opt_up_to_the_floor() {
    // A network with delays 1.0 ± 0.1: the offset variant with 𝒯₁ = 0.9
    // must do about as well as plain A^opt does with delays in [0, 0.2].
    let eps = 1e-3;
    let uncertainty = 0.2;
    let t1 = 0.9;
    let params = Params::recommended(eps, uncertainty).unwrap();
    let n = 6;
    let drift = DriftBounds::new(eps).unwrap();
    let schedules = rates::split(n, drift, |v| v % 2 == 0);

    let banded = |seed: u64| {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        FnDelay::new(
            move |_: &DelayCtx<'_>| Delivery::After(rng.gen_range(t1..=t1 + uncertainty)),
            Some(t1 + uncertainty),
        )
    };
    let g = topology::path(n);
    let mut observer = SkewObserver::new(&g);
    let mut engine = Engine::builder(g)
        .protocols(vec![OffsetAOpt::new(params, t1); n])
        .delay_model(banded(4))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(300.0, |e| observer.observe(e));
    // Without compensation the skew would be ≈ (n−1)·𝒯₂ ≈ 5.5; with it the
    // bound driven by the uncertainty alone (plus H₀ staleness) applies.
    let effective_bound =
        params.global_skew_bound((n - 1) as u32) + 2.0 * eps * (n as f64) * params.h0() + 0.5;
    assert!(
        observer.worst_global() <= effective_bound,
        "offset variant skew {} suggests 𝒯₁ not compensated",
        observer.worst_global()
    );
}

#[test]
fn discrete_variant_tracks_continuous_a_opt() {
    let eps = 0.01;
    let t_max = 0.1;
    let params = Params::recommended(eps, t_max).unwrap();
    let n = 6;
    let drift = DriftBounds::new(eps).unwrap();
    let schedules = rates::split(n, drift, |v| v < n / 2);
    let g = topology::path(n);

    let run_discrete = {
        let g = g.clone();
        let schedules = schedules.clone();
        move || {
            let mut obs = SkewObserver::new(&g);
            let mut engine = Engine::builder(g.clone())
                .protocols(vec![DiscreteAOpt::new(params); n])
                .delay_model(ConstantDelay::new(t_max / 2.0))
                .rate_schedules(schedules.clone())
                .build();
            engine.wake_all_at(0.0);
            engine.run_until_observed(200.0, |e| obs.observe(e));
            obs
        }
    };
    let discrete = run_discrete();

    let mut obs = SkewObserver::new(&g);
    let mut engine = Engine::builder(g.clone())
        .protocols(vec![AOpt::new(params); n])
        .delay_model(ConstantDelay::new(t_max / 2.0))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(200.0, |e| obs.observe(e));

    // The quantized variant pays at most the documented penalties:
    // O(εDH₀) for periodic-only propagation plus quanta.
    let penalty =
        2.0 * eps * (n as f64) * params.h0() + 4.0 * params.mu() * params.h0() + params.kappa();
    assert!(
        discrete.worst_global() <= obs.worst_global() + penalty,
        "discrete {} vs continuous {} (allowed penalty {penalty})",
        discrete.worst_global(),
        obs.worst_global()
    );
}

#[test]
fn rtt_estimation_feeds_valid_params() {
    // Section 8.1 pipeline: probe the network, derive 𝒯̂, build Params.
    let t_true = 0.05;
    let eps = 0.01;
    let g = topology::cycle(5);
    let mut engine = Engine::builder(g)
        .protocols(vec![RttProbe::new(0.5, eps); 5])
        .delay_model(UniformDelay::new(t_true, 12))
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(60.0);
    let t_hat = engine.protocol(NodeId(0)).t_hat_estimate();
    assert!(t_hat > 0.0 && t_hat <= 2.0 * t_true / (1.0 - eps) + 1e-9);
    let params = Params::recommended(eps, t_hat.max(t_true)).unwrap();
    assert!(params.kappa() > 0.0);
}

#[test]
fn baseline_comparison_wavefront() {
    // The headline qualitative claim: under the wavefront adversary the
    // max-forwarding baseline suffers Θ(boundary·𝒯) local skew while A^opt
    // stays within its logarithmic bound.
    let n = 20;
    let t_max = 0.3;
    let eps = 0.02;
    let boundary = 12u32;
    let g = topology::path(n);
    let mut schedules = vec![RateSchedule::constant(1.0 + eps).unwrap()];
    schedules.extend(vec![RateSchedule::constant(1.0 - eps).unwrap(); n - 1]);
    let flip = boundary as f64 * t_max / (2.0 * eps) + 30.0;
    let horizon = flip + 5.0;

    let worst_local = |obs: &SkewObserver| obs.worst_local();

    let mut obs_max = SkewObserver::new(&g);
    let mut engine = Engine::builder(g.clone())
        .protocols(vec![MaxAlgorithm::new(1.0); n])
        .delay_model(WavefrontDelay::new(&g, NodeId(0), t_max, flip, boundary))
        .rate_schedules(schedules.clone())
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(horizon, |e| obs_max.observe(e));

    let params = Params::recommended(eps, t_max).unwrap();
    let mut obs_aopt = SkewObserver::new(&g);
    let mut engine = Engine::builder(g.clone())
        .protocols(vec![AOpt::new(params); n])
        .delay_model(WavefrontDelay::new(&g, NodeId(0), t_max, flip, boundary))
        .rate_schedules(schedules.clone())
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(horizon, |e| obs_aopt.observe(e));

    let mut obs_mid = SkewObserver::new(&g);
    let mut engine = Engine::builder(g.clone())
        .protocols(vec![MidpointAlgorithm::new(params.h0(), params.mu()); n])
        .delay_model(WavefrontDelay::new(&g, NodeId(0), t_max, flip, boundary))
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until_observed(horizon, |e| obs_mid.observe(e));

    assert!(worst_local(&obs_aopt) <= params.local_skew_bound((n - 1) as u32) + 1e-9);
    assert!(
        worst_local(&obs_max) > 0.4 * boundary as f64 * t_max,
        "max baseline local skew {} lacks the wavefront",
        worst_local(&obs_max)
    );
    assert!(worst_local(&obs_max) > 2.0 * worst_local(&obs_aopt));
    // The midpoint baseline, lacking the κ-quantized balancing, also loses
    // to A^opt here (its max estimate never propagates).
    assert!(worst_local(&obs_mid) + 1e-9 >= worst_local(&obs_aopt) / 4.0);
}

#[test]
fn determinism_across_full_stack() {
    // Same seeds ⇒ bit-identical skew history, across all layers.
    let run = || {
        let eps = 0.01;
        let params = Params::recommended(eps, 0.1).unwrap();
        let g = topology::erdos_renyi(10, 0.25, 3);
        let drift = DriftBounds::new(eps).unwrap();
        let schedules = rates::random_walk(10, drift, 2.0, 50.0, 4);
        let mut obs = SkewObserver::new(&g).with_series(1.0);
        let mut engine = Engine::builder(g)
            .protocols(vec![AOpt::new(params); 10])
            .delay_model(UniformDelay::new(0.1, 5))
            .rate_schedules(schedules)
            .build();
        engine.wake_all_at(0.0);
        engine.run_until_observed(50.0, |e| obs.observe(e));
        (
            obs.worst_global(),
            obs.worst_local(),
            engine.message_stats().clone(),
        )
    };
    assert_eq!(run(), run());
}
