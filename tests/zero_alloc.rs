//! Allocation-regression pin of the engine's steady-state hot path.
//!
//! A counting global allocator wraps `System`; after warming an F2
//! wavefront run past its flip, 10 000 further events must dispatch with
//! **zero** heap allocations. Every per-event allocation the hot path used
//! to make — the pending `HashMap` inserts, the fresh `Vec<Action>` per
//! handler, the `neighbors.to_vec()` broadcast clone, the collect-and-sort
//! in rate-change rescheduling — would trip this test if reintroduced.
//!
//! This file holds a single `#[test]` on purpose: the allocator count is
//! process-global, and a sibling test thread would pollute the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gcs_adversary::WavefrontDelay;
use gcs_core::{AOpt, Params};
use gcs_graph::{topology, NodeId};
use gcs_sim::{Engine, RecorderSink};
use gcs_sweep::build_rates;

/// Counts every allocation (alloc + realloc) made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_window_makes_no_heap_allocations() {
    // The engine_hotpath bench fixture at n = 64: A^opt on a path under the
    // wavefront adversary with distance-split drift.
    let (eps, t_max, flip) = (0.02, 0.25, 30.0);
    let n = 64;
    let warmup_horizon = 40.0;
    let graph = topology::path(n);
    let boundary = (graph.diameter() / 2).max(1);
    let delay = WavefrontDelay::new(&graph, NodeId(0), t_max, flip, boundary);
    let drift = gcs_time::DriftBounds::new(eps).unwrap();
    let schedules = build_rates("distsplit", &graph, drift, warmup_horizon, 0).unwrap();
    let params = Params::recommended(eps, t_max).unwrap();
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    // Warm past the wavefront flip: every buffer reaches its high-water
    // capacity (event queue, action buffer, pending slabs, A^opt state).
    engine.run_until(warmup_horizon);

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        engine
            .step()
            .expect("the wavefront fixture never drains its queue");
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "engine hot path allocated {allocated} times across a 10k-event steady-state window"
    );

    // Same fixture with the flight recorder armed: recording every event
    // into the bounded rings must also be allocation-free — the rings are
    // preallocated at construction and slots are fixed-width (frame
    // encoding happens only at dump time).
    let graph = topology::path(n);
    let delay = WavefrontDelay::new(&graph, NodeId(0), t_max, flip, boundary);
    let schedules = build_rates("distsplit", &graph, drift, warmup_horizon, 0).unwrap();
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .event_sink(RecorderSink::new())
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(warmup_horizon);

    let recorded_before = engine.sink().recorded();
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        engine
            .step()
            .expect("the wavefront fixture never drains its queue");
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "flight recorder allocated {allocated} times across a 10k-event steady-state window"
    );
    assert!(
        engine.sink().recorded() > recorded_before,
        "the recorder must have been recording during the window"
    );

    // Large-n case: the SoA hot/cold node planes, the packed-key queue,
    // and the pending slabs all pre-reserve capacity at build time, so the
    // steady state must stay allocation-free when the working set is far
    // beyond cache. (The path diameter is n - 1 by construction; the
    // all-pairs `graph.diameter()` scan is avoided on purpose, and the
    // schedules reproduce `build_rates("distsplit", ..)` directly.)
    let n = 8192;
    let graph = topology::path(n);
    let diameter = (n - 1) as u32;
    let boundary = (diameter / 2).max(1);
    let delay = WavefrontDelay::new(&graph, NodeId(0), t_max, flip, boundary);
    let half = diameter / 2;
    let schedules = gcs_sim::rates::split(n, drift, move |v| (v as u32) < half);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(warmup_horizon);

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        engine
            .step()
            .expect("the wavefront fixture never drains its queue");
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "large-n hot path allocated {allocated} times across a 10k-event window at n = {n}"
    );

    // Calendar-queue case: a constant delay advertises a positive floor,
    // so the queue runs in timing-wheel mode (ring buckets + overflow heap
    // instead of the plain near heap). Bucket vectors keep their capacity
    // across wheel revolutions, so this path must reach a hard
    // allocation-free steady state too — but its high water is per ring
    // slot and bucket occupancy fluctuates run-long, so the warmup is much
    // longer than the heap cases' (the run is deterministic: the measured
    // window allocates zero reproducibly).
    let n = 256;
    let graph = topology::path(n);
    let delay = gcs_sim::ConstantDelay::new(0.1);
    let schedules = gcs_sim::rates::split(n, drift, move |v| v < n / 2);
    let mut engine = Engine::builder(graph)
        .protocols(vec![AOpt::new(params); n])
        .delay_model(delay)
        .rate_schedules(schedules)
        .build();
    engine.wake_all_at(0.0);
    engine.run_until(10.0 * warmup_horizon);

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        engine
            .step()
            .expect("the constant-delay fixture never drains its queue");
    }
    let allocated = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocated, 0,
        "calendar-queue hot path allocated {allocated} times across a 10k-event window"
    );
}
